"""Certified static II lower bounds, derived before any scheduling.

``MinII = max(ResMII, RecMII)`` is the paper's yardstick, but it is a
*loose* bound: ResMII counts resources over the whole body and RecMII
looks at dependence circuits, while the real scheduler must satisfy both
kinds of constraint *simultaneously*.  This module derives refined lower
bounds that combine them:

* **recurrence certificate** — a critical circuit extracted from the
  longest-path relaxation, proving ``II >= ceil(L / D)``;
* **resource certificate** — the counting argument behind ResMII for the
  binding resource;
* **slot-conflict certificate** (per candidate II) — operations *rigid*
  relative to an anchor (their offset is forced by equal-and-opposite
  longest paths) demand more of one resource in one modulo slot than the
  machine has;
* **offset-exclusion certificate** (per candidate II) — one operation
  whose dependence window admits no issue offset at all: every candidate
  offset collides with the reservation pattern of the rigid operations
  (the way two unpipelined divide runs must thread around each other);
* **window-density certificate** (per candidate II) — a set of
  operations whose feasible issue offsets are confined to a window of
  ``S <= II`` cycles while their resource demand exceeds
  ``availability * S``;
* **register-pressure certificate** (per candidate II) — minimum value
  lifetimes at that II force ``ceil(sum(lifetimes)/II) + invariants``
  simultaneously-live ranges of one register class past the register
  file, so no schedule at that II survives allocation without spilling;
* **bank-pairing certificate** — a vertex-cover bound on how many
  compile-time opposite-bank pairs can exist, limiting the II at which
  the Section 2.9 pairing goal (``n_refs - II`` known pairs) is met.

Every bound ships a machine-checkable certificate (plain dicts, JSON
serialisable) that :mod:`repro.verify.boundcheck` validates from the DDG
and machine description alone.  The certificates claim *exactly* what
their witnesses prove — no slack — so a checker can insist on equality
and any tampering with a single field is detectable.

Certificates are sound against *relaxed* arc claims: a claimed arc
``[src, dst, lat, omega]`` is valid when a real DDG arc ``src -> dst``
has ``latency >= lat`` and ``omega <= omega_claimed`` (both directions
only weaken the derived bound).  This module always emits the real
values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ir.ddg import DDG, Dependence, DepKind
from ..ir.loop import Loop
from ..ir.operations import relative_bank
from ..machine.descriptions import MachineDescription
from ..core.minii import min_ii as compute_min_ii
from ..core.minii import rec_mii, res_mii
from ..regalloc.rename import value_reg_class

Certificate = Dict[str, Any]

#: Maximum path-expansion steps before giving up on a witness (defensive;
#: strict-improvement Floyd-Warshall cannot loop, but a witness is worthless
#: if we cannot terminate while building it).
_PATH_EXPANSION_LIMIT = 100_000


def _arc4(arc: Dependence) -> List[int]:
    """The four-field arc witness ``[src, dst, latency, omega]``."""
    return [arc.src, arc.dst, arc.latency, arc.omega]


# ----------------------------------------------------------------------
# Base certificates: ResMII counting and RecMII critical circuit
# ----------------------------------------------------------------------
def resource_certificate(loop: Loop, machine: MachineDescription) -> Certificate:
    """Counting witness for the binding resource of ResMII."""
    demand: Dict[str, int] = {}
    per_op: Dict[str, List[Tuple[int, int]]] = {}
    for op in loop.ops:
        for use in machine.table(op.opclass).uses:
            demand[use.resource] = demand.get(use.resource, 0) + use.count
            per_op.setdefault(use.resource, []).append((op.index, use.count))
    best_resource = ""
    best_bound = 1
    for resource in sorted(demand):
        avail = machine.availability.get(resource, 0)
        if avail <= 0:
            continue
        bound = math.ceil(demand[resource] / avail)
        if bound > best_bound:
            best_bound = bound
            best_resource = resource
    if not best_resource:
        # Nothing binds above 1; pick any resource so the witness is complete.
        best_resource = sorted(demand)[0] if demand else "issue"
    contributions = _merge_counts(per_op.get(best_resource, []))
    total = sum(count for _, count in contributions)
    avail = machine.availability.get(best_resource, 1)
    return {
        "kind": "resource",
        "regime": "schedule",
        "resource": best_resource,
        "available": avail,
        "contributions": [[op, count] for op, count in contributions],
        "total": total,
        "bound": max(1, math.ceil(total / max(avail, 1))),
    }


def _merge_counts(pairs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    merged: Dict[int, int] = {}
    for op, count in pairs:
        merged[op] = merged.get(op, 0) + count
    return sorted(merged.items())


def recurrence_certificate(loop: Loop, rec: Optional[int] = None) -> Optional[Certificate]:
    """Extract a critical dependence circuit proving ``II >= RecMII``.

    Runs the longest-path relaxation at ``II = RecMII - 1`` (where a
    positive circuit must exist) recording predecessor arcs, then walks
    predecessors ``n`` steps to land inside a positive circuit and
    collects it.  The circuit satisfies ``L - (rec-1) * D > 0`` hence
    ``ceil(L / D) >= rec``, and since no circuit beats RecMII,
    ``ceil(L / D) == rec`` exactly.
    """
    rec = rec_mii(loop) if rec is None else rec
    if rec <= 1:
        return None
    ii = rec - 1
    n = loop.n_ops
    dist = [0] * n
    pred: List[Optional[Dependence]] = [None] * n
    arcs = loop.ddg.arcs
    last_updated = -1
    for _ in range(n + 1):
        changed = False
        for arc in arcs:
            w = arc.latency - ii * arc.omega
            if dist[arc.src] + w > dist[arc.dst]:
                dist[arc.dst] = dist[arc.src] + w
                pred[arc.dst] = arc
                last_updated = arc.dst
                changed = True
        if not changed:
            break
    if last_updated < 0 or pred[last_updated] is None:
        return None  # RecMII disagrees with the relaxation; refuse to guess
    # Walk back n steps: we are then guaranteed to sit on a positive circuit.
    node = last_updated
    for _ in range(n):
        arc = pred[node]
        assert arc is not None
        node = arc.src
    seen: Dict[int, int] = {}
    trail: List[Dependence] = []
    cur = node
    while cur not in seen:
        seen[cur] = len(trail)
        arc = pred[cur]
        assert arc is not None
        trail.append(arc)
        cur = arc.src
    circuit = list(reversed(trail[seen[cur] :]))
    total_latency = sum(arc.latency for arc in circuit)
    total_omega = sum(arc.omega for arc in circuit)
    if total_omega <= 0:
        return None  # an uncarried positive circuit; rec_mii raises on these
    return {
        "kind": "recurrence",
        "regime": "schedule",
        "arcs": [_arc4(arc) for arc in circuit],
        "total_latency": total_latency,
        "total_omega": total_omega,
        "bound": math.ceil(total_latency / total_omega),
    }


# ----------------------------------------------------------------------
# Per-SCC longest-path tables at a candidate II, with arc witnesses
# ----------------------------------------------------------------------
class SccPaths:
    """All-pairs longest paths inside one SCC at a fixed II.

    Arc weight is ``latency - II * omega``; ``dist[i][j]`` is the longest
    path weight from member ``i`` to member ``j`` over intra-SCC arcs, a
    lower bound on ``t(j) - t(i)`` in any schedule at this II.  The table
    keeps ``via`` midpoints and the best direct arc per pair so every
    distance can be expanded into an explicit arc path (the certificate
    witness).  At a feasible II no circuit is positive, so strict
    improvements terminate and ``dist[i][i] == 0``.
    """

    def __init__(self, ddg: DDG, members: Sequence[int], ii: int) -> None:
        self.ii = ii
        self.members: Tuple[int, ...] = tuple(members)
        self.index: Dict[int, int] = {op: i for i, op in enumerate(self.members)}
        n = len(self.members)
        self.dist: List[List[Optional[int]]] = [[None] * n for _ in range(n)]
        self.via: List[List[Optional[int]]] = [[None] * n for _ in range(n)]
        self._direct: Dict[Tuple[int, int], Dependence] = {}
        for arc in ddg.arcs:
            i = self.index.get(arc.src)
            j = self.index.get(arc.dst)
            if i is None or j is None or i == j:
                continue
            w = arc.latency - ii * arc.omega
            cur = self.dist[i][j]
            if cur is None or w > cur:
                self.dist[i][j] = w
                self._direct[(i, j)] = arc
        for i in range(n):
            self.dist[i][i] = 0
        for k in range(n):
            dk = self.dist[k]
            for i in range(n):
                dik = self.dist[i][k]
                if dik is None:
                    continue
                di = self.dist[i]
                vi = self.via[i]
                for j in range(n):
                    dkj = dk[j]
                    if dkj is None:
                        continue
                    cand = dik + dkj
                    cur = di[j]
                    if cur is None or cand > cur:
                        di[j] = cand
                        vi[j] = k

    def lo(self, anchor: int, op: int) -> Optional[int]:
        """Lower bound on ``t(op) - t(anchor)``."""
        return self.dist[self.index[anchor]][self.index[op]]

    def hi(self, anchor: int, op: int) -> Optional[int]:
        """Upper bound on ``t(op) - t(anchor)`` (negated return path)."""
        back = self.dist[self.index[op]][self.index[anchor]]
        return None if back is None else -back

    def path(self, src: int, dst: int) -> Optional[List[Dependence]]:
        """Expand ``dist[src][dst]`` into an explicit arc path."""
        budget = [_PATH_EXPANSION_LIMIT]
        try:
            return self._expand(self.index[src], self.index[dst], budget)
        except RecursionError:  # pragma: no cover - defensive only
            return None

    def _expand(self, i: int, j: int, budget: List[int]) -> Optional[List[Dependence]]:
        budget[0] -= 1
        if budget[0] <= 0:  # pragma: no cover - defensive only
            return None
        if i == j and self.via[i][j] is None:
            return []
        k = self.via[i][j]
        if k is None:
            arc = self._direct.get((i, j))
            return None if arc is None else [arc]
        left = self._expand(i, k, budget)
        right = self._expand(k, j, budget)
        if left is None or right is None:  # pragma: no cover - defensive only
            return None
        return left + right


# ----------------------------------------------------------------------
# Per-II infeasibility: slot conflicts and window density
# ----------------------------------------------------------------------
def _rigid_offsets(paths: SccPaths, anchor: int) -> List[Tuple[int, int]]:
    """Members whose offset relative to ``anchor`` is forced exactly."""
    rigid: List[Tuple[int, int]] = []
    for op in paths.members:
        lo = paths.lo(anchor, op)
        hi = paths.hi(anchor, op)
        if lo is not None and hi is not None and lo == hi:
            rigid.append((op, lo))
    return rigid


def _slot_conflict_certificate(
    loop: Loop, machine: MachineDescription, ii: int, paths: SccPaths, anchor: int
) -> Optional[Certificate]:
    """Rigid ops oversubscribing one (resource, modulo slot) pair."""
    rigid = _rigid_offsets(paths, anchor)
    if len(rigid) < 2:
        return None
    usage: Dict[Tuple[str, int], int] = {}
    for op, offset in rigid:
        for use in machine.table(loop.ops[op].opclass).uses:
            key = (use.resource, (offset + use.offset) % ii)
            usage[key] = usage.get(key, 0) + use.count
    for (resource, slot), used in sorted(usage.items()):
        avail = machine.availability.get(resource, 0)
        if used <= avail:
            continue
        entries: List[Dict[str, Any]] = []
        for op, offset in rigid:
            uses_here = [
                [use.offset, use.count]
                for use in machine.table(loop.ops[op].opclass).uses
                if use.resource == resource and (offset + use.offset) % ii == slot
            ]
            if not uses_here:
                continue
            lb = [] if op == anchor else paths.path(anchor, op)
            ub = [] if op == anchor else paths.path(op, anchor)
            if lb is None or ub is None:  # pragma: no cover - defensive only
                return None
            entries.append(
                {
                    "op": op,
                    "offset": offset,
                    "lb_path": [_arc4(a) for a in lb],
                    "ub_path": [_arc4(a) for a in ub],
                    "uses": uses_here,
                }
            )
        return {
            "kind": "slot_conflict",
            "regime": "schedule",
            "ii": ii,
            "bound": ii + 1,
            "anchor": anchor,
            "resource": resource,
            "slot": slot,
            "available": avail,
            "used": used,
            "rigid": entries,
        }
    return None


def _offset_exclusion_certificate(
    loop: Loop, machine: MachineDescription, ii: int, paths: SccPaths, anchor: int
) -> Optional[Certificate]:
    """A windowed op whose every candidate offset collides with rigid ops.

    The rigid members occupy a fixed pattern of (resource, modulo slot)
    demand.  A non-rigid member confined to ``[lo, hi]`` must pick an
    offset whose residue modulo II keeps every slot within availability;
    when *no* residue reachable from the window survives, the II is
    infeasible.  This is the certificate that catches interlocking
    unpipelined runs (divide/sqrt recurrences): the run must thread the
    gap the rigid runs leave, and the dependence window misses it.
    """
    rigid = _rigid_offsets(paths, anchor)
    if not rigid:
        return None
    usage: Dict[Tuple[str, int], int] = {}
    for op, offset in rigid:
        for use in machine.table(loop.ops[op].opclass).uses:
            key = (use.resource, (offset + use.offset) % ii)
            usage[key] = usage.get(key, 0) + use.count
    rigid_ops = {op for op, _ in rigid}
    for op in paths.members:
        if op in rigid_ops:
            continue
        lo = paths.lo(anchor, op)
        hi = paths.hi(anchor, op)
        if lo is None or hi is None or hi < lo:
            continue
        uses = machine.table(loop.ops[op].opclass).uses
        if not uses:
            continue
        blocked = True
        for offset in range(lo, min(hi, lo + ii - 1) + 1):
            fits = True
            for use in uses:
                key = (use.resource, (offset + use.offset) % ii)
                avail = machine.availability.get(use.resource, 0)
                if usage.get(key, 0) + use.count > avail:
                    fits = False
                    break
            if fits:
                blocked = False
                break
        if not blocked:
            continue
        entries: List[Dict[str, Any]] = []
        witness_failed = False
        for rop, roffset in rigid:
            lb = [] if rop == anchor else paths.path(anchor, rop)
            ub = [] if rop == anchor else paths.path(rop, anchor)
            if lb is None or ub is None:  # pragma: no cover - defensive only
                witness_failed = True
                break
            entries.append(
                {
                    "op": rop,
                    "offset": roffset,
                    "lb_path": [_arc4(a) for a in lb],
                    "ub_path": [_arc4(a) for a in ub],
                }
            )
        if witness_failed:
            continue
        lb = paths.path(anchor, op)
        ub = paths.path(op, anchor)
        if lb is None or ub is None:  # pragma: no cover - defensive only
            continue
        return {
            "kind": "offset_exclusion",
            "regime": "schedule",
            "ii": ii,
            "bound": ii + 1,
            "anchor": anchor,
            "op": op,
            "lo": lo,
            "hi": hi,
            "lb_path": [_arc4(a) for a in lb],
            "ub_path": [_arc4(a) for a in ub],
            "rigid": entries,
        }
    return None


def _window_density_certificate(
    loop: Loop, machine: MachineDescription, ii: int, paths: SccPaths, anchor: int
) -> Optional[Certificate]:
    """Ops confined to a short window demanding more than it can hold.

    Each SCC member's issue offset relative to the anchor is confined to
    ``[lo, hi]`` by its longest paths to and from the anchor.  If a set
    of resource uses is confined to a window of ``S <= II`` cycles and
    their total count exceeds ``availability * S``, the window cannot
    hold them at this II regardless of where in it each op lands.
    """
    items: Dict[str, List[Tuple[int, int, int, int, int, int, int]]] = {}
    for op in paths.members:
        lo = paths.lo(anchor, op)
        hi = paths.hi(anchor, op)
        if lo is None or hi is None or hi < lo:
            continue
        for use in machine.table(loop.ops[op].opclass).uses:
            items.setdefault(use.resource, []).append(
                (lo + use.offset, hi + use.offset, use.count, op, lo, hi, use.offset)
            )
    for resource in sorted(items):
        avail = machine.availability.get(resource, 0)
        if avail <= 0:
            continue
        uses = sorted(items[resource])
        n = len(uses)
        for start in range(n):
            w0 = uses[start][0]
            w1 = uses[start][1]
            if w1 - w0 + 1 > ii:
                continue
            total = 0
            chosen: List[Tuple[int, int, int, int, int, int, int]] = []
            for j in range(start, n):
                cand_hi = max(w1, uses[j][1])
                if cand_hi - w0 + 1 > ii:
                    continue  # skipping an item keeps the subset sound
                w1 = cand_hi
                total += uses[j][2]
                chosen.append(uses[j])
                if total > avail * (w1 - w0 + 1):
                    return _build_window_certificate(
                        ii, paths, anchor, resource, avail, chosen
                    )
    return None


def _build_window_certificate(
    ii: int,
    paths: SccPaths,
    anchor: int,
    resource: str,
    avail: int,
    chosen: Sequence[Tuple[int, int, int, int, int, int, int]],
) -> Optional[Certificate]:
    w0 = min(item[0] for item in chosen)
    w1 = max(item[1] for item in chosen)
    by_op: Dict[int, Dict[str, Any]] = {}
    for cycle_lo, cycle_hi, count, op, lo, hi, use_offset in chosen:
        entry = by_op.get(op)
        if entry is None:
            lb = [] if op == anchor else paths.path(anchor, op)
            ub = [] if op == anchor else paths.path(op, anchor)
            if lb is None or ub is None:  # pragma: no cover - defensive only
                return None
            entry = by_op[op] = {
                "op": op,
                "lo": lo,
                "hi": hi,
                "lb_path": [_arc4(a) for a in lb],
                "ub_path": [_arc4(a) for a in ub],
                "uses": [],
            }
        entry["uses"].append([use_offset, count])
    total = sum(item[2] for item in chosen)
    return {
        "kind": "window_density",
        "regime": "schedule",
        "ii": ii,
        "bound": ii + 1,
        "anchor": anchor,
        "resource": resource,
        "window": [w0, w1],
        "available": avail,
        "used": total,
        "members": [by_op[op] for op in sorted(by_op)],
    }


def prove_ii_infeasible(
    loop: Loop, machine: MachineDescription, ii: int
) -> Optional[Certificate]:
    """A schedule-regime certificate that no legal schedule exists at ``ii``.

    Tries every nontrivial SCC and every member as the anchor; returns the
    first certificate found, or ``None`` when this analysis cannot rule
    the II out (which does *not* mean the II is feasible).
    """
    if ii <= 0:
        return None
    for members in loop.ddg.nontrivial_sccs():
        paths = SccPaths(loop.ddg, members, ii)
        for prover in (
            _slot_conflict_certificate,
            _offset_exclusion_certificate,
            _window_density_certificate,
        ):
            for anchor in members:
                cert = prover(loop, machine, ii, paths, anchor)
                if cert is not None:
                    return cert
    return None


# ----------------------------------------------------------------------
# Register-pressure lower bound at a candidate II
# ----------------------------------------------------------------------
def prove_alloc_infeasible(
    loop: Loop, machine: MachineDescription, ii: int
) -> Optional[Certificate]:
    """An allocation-regime certificate that no schedule at ``ii`` allocates.

    Minimum lifetimes: a value defined by ``d`` and read by ``u`` at
    iteration distance ``omega`` lives at least ``W + II * omega`` cycles
    where ``W`` is the longest d->u path weight at this II (at least the
    flow arc's latency).  Summed over the class and averaged over the
    unrolled kernel, ``ceil(sum / II)`` ranges of the class are live in
    some cycle, plus one whole-kernel range per loop invariant; ranges
    sharing a cycle pairwise interfere, so the class needs that many
    registers in *any* schedule at this II.
    """
    if ii <= 0:
        return None
    defs = loop.defs_of()
    path_tables: Dict[int, SccPaths] = {}

    def paths_for(op: int) -> Optional[SccPaths]:
        if not loop.ddg.in_nontrivial_scc(op):
            return None
        scc = loop.ddg.scc_id(op)
        if scc not in path_tables:
            path_tables[scc] = SccPaths(loop.ddg, loop.ddg.scc_members(op), ii)
        return path_tables[scc]

    by_class: Dict[str, List[Dict[str, Any]]] = {}
    for value in sorted(defs):
        d = defs[value]
        best: Optional[Dict[str, Any]] = None
        for arc in loop.ddg.arcs:
            if arc.kind is not DepKind.FLOW or arc.value != value or arc.src != d:
                continue
            # The witness weight is a lower bound on t(use) - t(def): the
            # arc's own constraint (latency - II*omega, which is 0 for a
            # self-recurrence where def and use coincide), improved by the
            # longest path inside the SCC when that is larger.
            weight = arc.latency - ii * arc.omega
            witness: List[Dependence] = [arc]
            if arc.dst == d:
                weight = 0
                witness = []
            tables = paths_for(d)
            if tables is not None and arc.dst in tables.index:
                refined = tables.lo(d, arc.dst)
                if refined is not None and refined > weight:
                    expanded = tables.path(d, arc.dst)
                    if expanded is not None:
                        weight = refined
                        witness = expanded
            lifetime = max(1, weight + ii * arc.omega)
            if best is None or lifetime > best["lifetime"]:
                best = {
                    "value": value,
                    "def_op": d,
                    "lifetime": lifetime,
                    "use_op": arc.dst,
                    "omega": arc.omega,
                    "path": [_arc4(a) for a in witness],
                }
        if best is None:
            best = {
                "value": value,
                "def_op": d,
                "lifetime": 1,
                "use_op": None,
                "omega": 0,
                "path": [],
            }
        cls = value_reg_class(loop, value).value
        by_class.setdefault(cls, []).append(best)

    invariants: Dict[str, List[str]] = {}
    for value in sorted(loop.live_in):
        if value in defs:
            continue
        if not any(value in op.srcs for op in loop.ops):
            continue
        cls = value_reg_class(loop, value).value
        invariants.setdefault(cls, []).append(value)

    registers = {"fp": machine.fp_regs, "int": machine.int_regs}
    for cls in sorted(registers):
        values = by_class.get(cls, [])
        inv = invariants.get(cls, [])
        total = sum(v["lifetime"] for v in values)
        pressure = math.ceil(total / ii) + len(inv)
        if pressure > registers[cls]:
            return {
                "kind": "register_pressure",
                "regime": "allocation",
                "ii": ii,
                "bound": ii + 1,
                "reg_class": cls,
                "registers": registers[cls],
                "values": values,
                "invariants": inv,
                "total_lifetime": total,
            }
    return None


# ----------------------------------------------------------------------
# Bank-pairing feasibility bound
# ----------------------------------------------------------------------
def pairing_certificate(loop: Loop, machine: MachineDescription) -> Optional[Certificate]:
    """Vertex-cover bound on the II at which Section 2.9's goal is met.

    The pairer wants ``n_refs - II`` same-cycle pairs with compile-time
    *opposite* banks.  Pairs are a matching in the opposite-bank graph
    (each reference issues once per iteration, so it has at most one
    mate), and any vertex cover bounds the maximum matching; a cover of
    size ``M`` therefore forces ``II >= n_refs - M`` before the goal is
    even expressible.  Report-only: schedules below the bound are legal,
    they just cannot reach the pairing target.
    """
    if not machine.has_banked_memory:
        return None
    mem_ops = sorted(op.index for op in loop.ops if op.is_memory)
    n_refs = len(mem_ops)
    if n_refs < 2:
        return None
    edges: List[Tuple[int, int]] = []
    for i, a in enumerate(mem_ops):
        for b in mem_ops[i + 1 :]:
            rel = relative_bank(loop.ops[a].mem, loop.ops[b].mem, loop.known_parity)
            if rel == 1:
                edges.append((a, b))
    cover: List[int] = []
    remaining = list(edges)
    while remaining:
        counts: Dict[int, int] = {}
        for a, b in remaining:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        pick = max(sorted(counts), key=lambda v: counts[v])
        cover.append(pick)
        remaining = [e for e in remaining if pick not in e]
    bound = n_refs - len(cover)
    if bound <= 1:
        return None
    return {
        "kind": "bank_pairing",
        "regime": "pairing",
        "bound": bound,
        "mem_ops": mem_ops,
        "n_refs": n_refs,
        "cover": sorted(cover),
        "max_known_pairs": len(cover),
    }


# ----------------------------------------------------------------------
# The aggregate: LoopBounds
# ----------------------------------------------------------------------
@dataclass
class LoopBounds:
    """All certified bounds for one loop on one machine."""

    loop: str
    machine: str
    n_ops: int
    res_mii: int
    rec_mii: int
    min_ii: int
    #: smallest II not certified schedule-infeasible
    schedulable_bound: int
    #: smallest II not certified allocation-infeasible (>= schedulable_bound)
    allocatable_bound: int
    #: smallest II at which the bank-pairing goal is satisfiable (1 = no bound)
    pairing_bound: int
    #: climb ceiling used; schedulable_bound == cap + 1 means every II up to
    #: the circuit breaker is certified infeasible
    cap: int
    certificates: List[Certificate] = field(default_factory=list)

    @property
    def refined_bound(self) -> int:
        """The bound safe for pruning the II search: schedulability only."""
        return self.schedulable_bound

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loop": self.loop,
            "machine": self.machine,
            "n_ops": self.n_ops,
            "res_mii": self.res_mii,
            "rec_mii": self.rec_mii,
            "min_ii": self.min_ii,
            "schedulable_bound": self.schedulable_bound,
            "allocatable_bound": self.allocatable_bound,
            "pairing_bound": self.pairing_bound,
            "cap": self.cap,
            "certificates": self.certificates,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LoopBounds":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__ if k in payload})


def compute_bounds(
    loop: Loop, machine: MachineDescription, cap: Optional[int] = None
) -> LoopBounds:
    """Derive every certified bound for ``loop`` on ``machine``.

    ``cap`` limits the infeasibility climb (default ``2 * MinII``, the
    driver's circuit breaker); a ``schedulable_bound`` of ``cap + 1``
    certifies the loop unschedulable under the breaker.
    """
    res = res_mii(loop, machine)
    rec = rec_mii(loop)
    mii = max(res, rec)
    cap = 2 * mii if cap is None else cap
    certificates: List[Certificate] = []

    res_cert = resource_certificate(loop, machine)
    certificates.append(res_cert)
    rec_cert = recurrence_certificate(loop, rec)
    if rec_cert is not None:
        certificates.append(rec_cert)
    base = max(res_cert["bound"], rec_cert["bound"] if rec_cert else 1, 1)

    bound = base
    while bound <= cap:
        cert = prove_ii_infeasible(loop, machine, bound)
        if cert is None:
            break
        certificates.append(cert)
        bound += 1
    schedulable = bound

    alloc = schedulable
    while alloc <= cap:
        cert = prove_alloc_infeasible(loop, machine, alloc)
        if cert is None:
            break
        certificates.append(cert)
        alloc += 1

    pair_cert = pairing_certificate(loop, machine)
    pairing = 1
    if pair_cert is not None:
        certificates.append(pair_cert)
        pairing = pair_cert["bound"]

    return LoopBounds(
        loop=loop.name,
        machine=machine.name,
        n_ops=loop.n_ops,
        res_mii=res,
        rec_mii=rec,
        min_ii=compute_min_ii(loop, machine),
        schedulable_bound=schedulable,
        allocatable_bound=alloc,
        pairing_bound=pairing,
        cap=cap,
        certificates=certificates,
    )


def schedulable_bound(
    loop: Loop,
    machine: MachineDescription,
    cap: Optional[int] = None,
    base: Optional[int] = None,
) -> int:
    """Fast entry for the II search: the certified schedulability bound.

    Skips certificate assembly for the base bounds (``base`` defaults to
    MinII, which the driver has already computed) and climbs with per-II
    infeasibility proofs only.  Safe for pruning: every II below the
    returned value is certified to admit no legal schedule of this exact
    loop body.
    """
    if base is None:
        base = max(res_mii(loop, machine), rec_mii(loop))
    if cap is None:
        cap = 2 * base
    bound = max(base, 1)
    while bound <= cap and prove_ii_infeasible(loop, machine, bound) is not None:
        bound += 1
    return bound
