"""AST determinism lint: no unordered iteration, no ambient randomness.

Certified bounds are only as trustworthy as the determinism of the code
deriving them: a certificate produced by iterating a ``set`` in hash
order, or a tie broken by the global ``random`` module, can differ
between runs while both runs claim to be "the" analysis.  This lint
walks the AST of every source file and flags the two constructs that
have historically produced irreproducible schedules and certificates:

``DET001``
    Iteration over a *statically evident* set expression — a set
    literal, ``set(...)``/``frozenset(...)`` call, or a union /
    intersection / difference of those — in an order-sensitive
    position: a ``for`` statement, a list/dict/generator comprehension,
    or a ``list``/``tuple``/``enumerate``/``str.join`` call.  Iteration
    that lands in an order-insensitive sink (``sorted``, ``min``,
    ``max``, ``sum``, ``len``, ``any``, ``all``, ``set``,
    ``frozenset``) or builds another set (a set comprehension) is not
    flagged: unordered in, unordered out leaks nothing.

``DET002``
    Use of the process-global ``random`` module — ``random.choice(...)``
    and friends, or ``from random import choice``.  Randomness must
    flow through an explicit :class:`random.Random` instance passed as
    a parameter (the ``workloads.mutate`` convention), so constructing
    ``random.Random(seed)`` / ``random.SystemRandom()`` is allowed.

A finding on a line (or anywhere in the flagged statement's span)
carrying a ``# det: ok`` comment is suppressed — the annotation is the
reviewed claim that order (or entropy) cannot leak there.  Whole files
can be allowlisted per rule via :data:`ALLOWLIST` or ``--allow``.

Run as ``python -m repro.analyze.codelint src/repro`` (the ``make
lint`` wiring); exits non-zero when any unsuppressed finding remains.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

#: (path suffix, rule) pairs exempt from linting.  Keep this list short
#: and commented: every entry is a standing claim that the file cannot
#: leak iteration order / entropy into schedules or certificates.
ALLOWLIST: Tuple[Tuple[str, str], ...] = ()

#: Calls whose result does not depend on argument iteration order.
_ORDER_FREE_SINKS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Calls that materialise their argument's iteration order.
_ORDER_SENSITIVE_SINKS = frozenset({"list", "tuple", "enumerate"})

#: ``random`` attributes that are explicit-rng constructors, not draws.
_RNG_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})

SUPPRESS_MARKER = "det: ok"


@dataclass(frozen=True)
class Finding:
    """One determinism hazard: where, which rule, and what was seen."""

    path: str
    line: int
    rule: str
    message: str

    def formatted(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _is_set_expr(node: ast.expr) -> bool:
    """Is ``node`` statically known to evaluate to an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Union / intersection / difference / symmetric difference of
        # sets is a set; one known-set side is enough to know the type.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    # -- DET001: unordered iteration ----------------------------------
    def _flag_iter(self, iter_node: ast.expr, context: str) -> None:
        if _is_set_expr(iter_node):
            self.findings.append(
                Finding(
                    self.path,
                    iter_node.lineno,
                    "DET001",
                    f"iteration over a set in {context}: order is "
                    "hash-dependent; sort it or build a set from it",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_iter(node.iter, "a for statement")
        self.generic_visit(node)

    def _visit_comp(
        self,
        node: "ast.ListComp | ast.DictComp | ast.GeneratorExp",
        kind: str,
    ) -> None:
        for gen in node.generators:
            self._flag_iter(gen.iter, kind)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, "a list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, "a dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, "a generator expression")

    # A set comprehension rebuilds a set: unordered in, unordered out.
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    # -- call sites: sinks and DET002 random draws ---------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ORDER_SENSITIVE_SINKS:
                for arg in node.args:
                    self._flag_iter(arg, f"a {func.id}() call")
            if func.id in _ORDER_FREE_SINKS:
                # Do not descend into directly-passed comprehensions:
                # sorted(x for x in set(...)) is deterministic.  Still
                # visit other argument shapes (nested calls etc.).
                for arg in node.args:
                    if not isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ):
                        self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
        if isinstance(func, ast.Attribute):
            if func.attr == "join":
                for arg in node.args:
                    self._flag_iter(arg, "a str.join() call")
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in _RNG_CONSTRUCTORS
            ):
                self.findings.append(
                    Finding(
                        self.path,
                        node.lineno,
                        "DET002",
                        f"global random.{func.attr}(): draw from an "
                        "explicit random.Random parameter instead",
                    )
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = [
                a.name for a in node.names if a.name not in _RNG_CONSTRUCTORS
            ]
            if bad:
                self.findings.append(
                    Finding(
                        self.path,
                        node.lineno,
                        "DET002",
                        f"from random import {', '.join(bad)}: these share "
                        "global state; import random.Random and pass an "
                        "instance instead",
                    )
                )
        self.generic_visit(node)


def _suppressed_lines(source: str) -> Set[int]:
    """1-based line numbers carrying the ``# det: ok`` marker."""
    return {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if "#" in line and SUPPRESS_MARKER in line.split("#", 1)[1]
    }


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """All unsuppressed determinism findings in one source text."""
    tree = ast.parse(source, filename=path)
    visitor = _DeterminismVisitor(path)
    visitor.visit(tree)
    suppressed = _suppressed_lines(source)
    if not suppressed:
        return visitor.findings
    # A marker anywhere in the enclosing statement's span suppresses —
    # multi-line comprehensions put the flagged node lines apart from
    # where a comment naturally sits.
    spans: List[Tuple[int, int]] = [
        (node.lineno, getattr(node, "end_lineno", node.lineno) or node.lineno)
        for node in ast.walk(tree)
        if isinstance(node, ast.stmt)
    ]

    def covered(line: int) -> bool:
        if line in suppressed:
            return True
        stmt_spans = [s for s in spans if s[0] <= line <= s[1]]
        if not stmt_spans:
            return False
        lo, hi = max(stmt_spans, key=lambda s: s[0])  # innermost statement
        return any(lo <= mark <= hi for mark in suppressed)

    return [f for f in visitor.findings if not covered(f.line)]


def _allowed(path: str, rule: str, allow: Sequence[Tuple[str, str]]) -> bool:
    return any(path.endswith(suffix) and rule == r for suffix, r in allow)


def lint_paths(
    paths: Iterable[str],
    allow: Sequence[Tuple[str, str]] = ALLOWLIST,
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    files: List[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        files.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])
    findings: List[Finding] = []
    for file in files:
        found = lint_source(file.read_text(), str(file))
        findings.extend(
            f for f in found if not _allowed(f.path, f.rule, allow)
        )
    return findings


def main(argv: Sequence[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analyze.codelint",
        description="determinism lint: unordered iteration, global random",
    )
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument(
        "--allow",
        action="append",
        default=[],
        metavar="SUFFIX:RULE",
        help="allowlist entries on top of the built-in list",
    )
    args = parser.parse_args(argv)
    allow = list(ALLOWLIST)
    for entry in args.allow:
        suffix, _, rule = entry.rpartition(":")
        if not suffix or not rule:
            parser.error(f"--allow wants SUFFIX:RULE, got {entry!r}")
        allow.append((suffix, rule))
    findings = lint_paths(args.paths, allow)
    for finding in findings:
        print(finding.formatted())
    if findings:
        print(f"{len(findings)} determinism finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
