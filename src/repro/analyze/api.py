"""Corpus-level certified-bound analysis: the ``repro analyze`` backend.

For every loop of a corpus this derives the refined II lower bounds of
:mod:`repro.analyze.bounds`, optionally validates every shipped
certificate with the independent checker (:mod:`repro.verify.boundcheck`),
runs the requested pipeliners, and cross-checks each achieved II against
the certified bounds — a contradiction (an achieved or proved-optimal II
below a *validated* bound) means either a scheduler or the analyzer is
wrong, and is reported as such rather than averaged away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from .bounds import LoopBounds, compute_bounds

ANALYZE_SCHEDULERS = ("sgi", "most", "rau")


@dataclass
class LoopAnalysis:
    """One loop's certified bounds next to what the schedulers achieved."""

    loop: str
    n_ops: int
    res_mii: int
    rec_mii: int
    min_ii: int
    schedulable_bound: int
    allocatable_bound: int
    pairing_bound: int
    certificates: int
    bounds: Optional[Dict[str, Any]] = None  # LoopBounds.to_dict payload
    #: scheduler -> achieved II (None = no allocatable schedule found)
    achieved: Dict[str, Optional[int]] = field(default_factory=dict)
    #: scheduler -> spill rounds (spill code voids the pristine certificates)
    spill_rounds: Dict[str, int] = field(default_factory=dict)
    #: scheduler -> natively proved optimal (MOST only)
    optimal: Dict[str, bool] = field(default_factory=dict)
    #: certificate-checker errors ("RULE: message"); empty = clean or unchecked
    check_errors: List[str] = field(default_factory=list)
    #: achieved-vs-bound contradictions (BOUND005 findings)
    contradictions: List[str] = field(default_factory=list)
    checked: bool = False

    @property
    def refined_bound(self) -> int:
        return self.schedulable_bound

    @property
    def lift(self) -> int:
        """How far the certified schedulability bound exceeds MinII."""
        return self.schedulable_bound - self.min_ii

    @property
    def ok(self) -> bool:
        return not self.check_errors and not self.contradictions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loop": self.loop,
            "n_ops": self.n_ops,
            "res_mii": self.res_mii,
            "rec_mii": self.rec_mii,
            "min_ii": self.min_ii,
            "schedulable_bound": self.schedulable_bound,
            "allocatable_bound": self.allocatable_bound,
            "pairing_bound": self.pairing_bound,
            "certificates": self.certificates,
            "achieved": dict(self.achieved),
            "spill_rounds": dict(self.spill_rounds),
            "optimal": dict(self.optimal),
            "check_errors": list(self.check_errors),
            "contradictions": list(self.contradictions),
            "checked": self.checked,
        }


@dataclass
class AnalysisReport:
    """Everything one ``repro analyze`` sweep derived, ready to print."""

    corpus: str
    entries: List[LoopAnalysis] = field(default_factory=list)
    checked: bool = False
    schedulers: Sequence[str] = ()

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    @property
    def lifted(self) -> List[LoopAnalysis]:
        """Loops whose certified bound strictly exceeds MinII."""
        return [e for e in self.entries if e.lift > 0]

    def formatted(self, verbose: bool = False) -> str:
        width = max((len(e.loop) for e in self.entries), default=4)
        headers = f"  {'loop'.ljust(width)}  ops  MinII(res/rec)  sched>=  alloc>="
        for scheduler in self.schedulers:
            headers += f"  {scheduler:>5}"
        headers += "  certs  status"
        lines = [
            f"analyze {self.corpus}: {len(self.entries)} loops"
            + (" (certificates checked)" if self.checked else ""),
            headers,
        ]
        for e in self.entries:
            cells = ""
            for scheduler in self.schedulers:
                ii = e.achieved.get(scheduler)
                text = "-" if ii is None else str(ii)
                if e.optimal.get(scheduler):
                    text += "*"
                if e.spill_rounds.get(scheduler):
                    text += "s"
                cells += f"  {text:>5}"
            if e.check_errors:
                status = "FAIL"
            elif e.contradictions:
                status = "CONTRADICTED"
            elif self.checked:
                status = "ok"
            else:
                status = "unchecked"
            lines.append(
                f"  {e.loop.ljust(width)}  {e.n_ops:>3}  "
                f"{e.min_ii:>5} ({e.res_mii}/{e.rec_mii})  "
                f"{e.schedulable_bound:>7}  {e.allocatable_bound:>7}"
                f"{cells}  {e.certificates:>5}  {status}"
            )
        lifted = self.lifted
        lines.append(
            f"refined bound strictly above MinII on {len(lifted)}/"
            f"{len(self.entries)} loop(s)"
            + (
                ": " + ", ".join(f"{e.loop} (+{e.lift})" for e in lifted)
                if lifted
                else ""
            )
        )
        problems = [e for e in self.entries if not e.ok]
        if problems:
            for e in problems:
                for msg in e.check_errors + e.contradictions:
                    lines.append(f"  !! {e.loop}: {msg}")
        elif self.checked:
            total = sum(e.certificates for e in self.entries)
            lines.append(f"all {total} certificate(s) validated independently")
        if verbose:
            lines.append("legend: '*' proved optimal, 's' spill code inserted")
        return "\n".join(lines)


def _achieved(
    loop: Loop,
    machine: MachineDescription,
    schedulers: Sequence[str],
    most_time_limit: float,
    entry: LoopAnalysis,
) -> None:
    """Run the requested pipeliners and record what each one achieved."""
    # Lazy imports: the drivers consult repro.analyze for static pruning,
    # so importing them at module scope here would be circular.
    from ..core.driver import pipeline_loop
    from ..most.scheduler import MostOptions, most_pipeline_loop
    from ..rau.scheduler import rau_pipeline_loop

    for scheduler in schedulers:
        if scheduler == "sgi":
            result = pipeline_loop(loop, machine, verify=False)
            spills = result.spill_rounds
            optimal = False
        elif scheduler == "most":
            result = most_pipeline_loop(
                loop,
                machine,
                MostOptions(time_limit=most_time_limit, engine="scipy"),
                verify=False,
            )
            fallback = getattr(result, "fallback_result", None)
            spills = fallback.spill_rounds if fallback is not None else 0
            optimal = bool(result.optimal)
        elif scheduler == "rau":
            result = rau_pipeline_loop(loop, machine, verify=False)
            spills = 1 if result.spilled else 0
            optimal = False
        else:
            raise ValueError(f"unknown scheduler {scheduler!r}")
        entry.achieved[scheduler] = result.ii if result.success else None
        entry.spill_rounds[scheduler] = spills
        entry.optimal[scheduler] = optimal


def _cross_check(
    loop: Loop,
    machine: MachineDescription,
    bounds: LoopBounds,
    entry: LoopAnalysis,
) -> None:
    """Validate certificates and test every achieved II against the bounds."""
    from ..verify.boundcheck import check_achieved, check_bounds

    payload = bounds.to_dict()
    report = check_bounds(loop, machine, payload)
    entry.check_errors = [f"{d.rule}: {d.message}" for d in report.errors]
    entry.checked = True
    for scheduler, ii in entry.achieved.items():
        if ii is None:
            continue
        achieved = check_achieved(
            payload,
            ii=ii,
            spill_free=entry.spill_rounds.get(scheduler, 0) == 0,
            source=scheduler
            + ("/optimal" if entry.optimal.get(scheduler) else ""),
        )
        entry.contradictions.extend(
            f"{d.rule}: {d.message}" for d in achieved.errors
        )


def analyze_corpus(
    corpus: str,
    schedulers: Sequence[str] = ANALYZE_SCHEDULERS,
    machine: Optional[MachineDescription] = None,
    check: bool = False,
    limit: Optional[int] = None,
    most_time_limit: float = 2.0,
    keep_payload: bool = False,
    progress: Optional[Callable[[LoopAnalysis], None]] = None,
) -> AnalysisReport:
    """Derive, (optionally) check, and cross-validate bounds for a corpus.

    ``schedulers`` may be empty to compute and check bounds without
    running any pipeliner.  ``check=True`` additionally validates every
    certificate with the independent checker and cross-checks each
    achieved II against the certified bounds.  ``keep_payload`` retains
    each loop's full ``LoopBounds.to_dict`` payload on the entry (tests
    and the JSON output use it; the printed table does not).
    """
    from ..machine.descriptions import r8000
    from ..verify.api import corpus_loops

    machine = machine if machine is not None else r8000()
    loops = corpus_loops(corpus, machine)
    if limit is not None:
        loops = loops[:limit]
    report = AnalysisReport(corpus=corpus, checked=check, schedulers=tuple(schedulers))
    for loop in loops:
        bounds = compute_bounds(loop, machine)
        entry = LoopAnalysis(
            loop=loop.name,
            n_ops=loop.n_ops,
            res_mii=bounds.res_mii,
            rec_mii=bounds.rec_mii,
            min_ii=bounds.min_ii,
            schedulable_bound=bounds.schedulable_bound,
            allocatable_bound=bounds.allocatable_bound,
            pairing_bound=bounds.pairing_bound,
            certificates=len(bounds.certificates),
            bounds=bounds.to_dict() if keep_payload else None,
        )
        if schedulers:
            _achieved(loop, machine, schedulers, most_time_limit, entry)
        if check:
            _cross_check(loop, machine, bounds, entry)
        report.entries.append(entry)
        if progress is not None:
            progress(entry)
    return report
