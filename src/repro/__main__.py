"""Command-line entry point: ``python -m repro <experiment> [...]``.

Regenerates the paper's tables and figures (and the extensions) without
writing any code.  ``python -m repro --list`` shows what is available.
"""

from __future__ import annotations

import argparse
import sys
import time

from .eval import (
    ExperimentConfig,
    ext_overhead_objective,
    ext_rau_comparison,
    fig2_pipelining_effectiveness,
    fig3_priority_heuristics,
    fig4_membank_effectiveness,
    fig5_ilp_vs_heuristic,
    fig6_livermore,
    fig7_static_quality,
    sec47_compile_speed,
    sec5_ii_parity,
    sec5_scalability,
)

EXPERIMENTS = {
    "fig2": (fig2_pipelining_effectiveness, "SPEC92 fp: pipelining on vs off"),
    "fig3": (fig3_priority_heuristics, "single priority heuristic vs all four"),
    "fig4": (fig4_membank_effectiveness, "memory-bank heuristics on vs off"),
    "fig5": (fig5_ilp_vs_heuristic, "ILP vs MIPSpro, with/without bank pairing"),
    "fig6": (fig6_livermore, "Livermore kernels, short and long trip counts"),
    "fig7": (fig7_static_quality, "registers and overhead, MIPSpro minus ILP"),
    "sec47": (sec47_compile_speed, "compile-speed comparison"),
    "scalability": (sec5_scalability, "largest schedulable loop per technique"),
    "iiparity": (sec5_ii_parity, "how often the ILP finds a lower II"),
    "ext-rau": (ext_rau_comparison, "extension: add Rau94 iterative modulo scheduling"),
    "ext-overhead": (ext_overhead_objective, "extension: overhead-minimising ILP objective"),
}


def _verify_main(argv, parser) -> int:
    """``python -m repro verify <corpus>``: sweep and verify all artifacts."""
    vp = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Independently verify every artifact the pipeliners "
        "produce over a workload corpus (exit 1 on ERROR diagnostics).",
    )
    vp.add_argument(
        "corpus", nargs="?", default="all",
        help="livermore, spec92 or all (default: all)",
    )
    vp.add_argument(
        "--schedulers", default="sgi,most,rau",
        help="comma-separated subset of sgi,most,rau (default: all three)",
    )
    vp.add_argument(
        "--ilp-seconds", type=float, default=2.0,
        help="MOST ILP budget per loop during the sweep (default: 2s)",
    )
    vp.add_argument(
        "-v", "--verbose", action="store_true",
        help="print every diagnostic, warnings included",
    )
    args = vp.parse_args(argv)

    from .verify import verify_corpus

    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    try:
        sweep = verify_corpus(
            args.corpus, schedulers=schedulers, most_time_limit=args.ilp_seconds
        )
    except ValueError as exc:  # unknown corpus / scheduler name
        vp.error(str(exc))
    print(sweep.formatted(verbose=args.verbose))
    return 0 if sweep.ok else 1


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Software Pipelining Showdown experiments.",
    )
    if argv[:1] == ["verify"]:
        return _verify_main(argv[1:], parser)
    parser.add_argument(
        "experiments", nargs="*", help="experiment names (see --list); 'all' runs "
        "every one; 'verify <corpus>' runs the static verification sweep",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--corpus", action="store_true",
        help="print the workload corpus profiles (Livermore + SPEC92-like) and exit",
    )
    parser.add_argument(
        "--ilp-seconds", type=float, default=10.0,
        help="ILP budget per loop (paper: 180s; default: 10s)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="verify every pipelined loop while experiments run; exit non-zero "
        "on any ERROR diagnostic",
    )
    args = parser.parse_args(argv)

    if args.corpus:
        from .eval.corpus import livermore_profile, spec92_profile

        print(livermore_profile().formatted())
        print()
        print(spec92_profile().formatted())
        return 0

    if args.list or not args.experiments:
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, blurb) in EXPERIMENTS.items():
            print(f"  {name.ljust(width)}  {blurb}")
        return 0

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    if args.strict:
        from .verify import set_default_verify

        set_default_verify(True)
    config = ExperimentConfig(most_time_limit=args.ilp_seconds)
    for name in names:
        start = time.perf_counter()
        try:
            result = EXPERIMENTS[name][0](config)
        except Exception as exc:
            from .verify import VerificationError

            if args.strict and isinstance(exc, VerificationError):
                print(f"[{name}] verification failed:\n{exc}", file=sys.stderr)
                return 1
            raise
        print(result.formatted())
        print(f"\n[{name}: {time.perf_counter() - start:.1f}s]\n")
        sys.stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
