"""Command-line entry point: ``python -m repro <experiment> [...]``.

Regenerates the paper's tables and figures (and the extensions) without
writing any code.  ``python -m repro --list`` shows what is available.

Ten subcommands sit beside the experiment runner:

* ``python -m repro verify <corpus>`` — static verification sweep;
* ``python -m repro bench [--quick]`` — the timed (loop × scheduler)
  grid, emitted as ``benchmarks/output/BENCH_pipeline.json``;
* ``python -m repro sweep <corpus>`` — the same grid for one corpus;
* ``python -m repro trace <corpus>`` — run the grid under the repro.obs
  recorder and print the per-loop search-effort table (SGI B&B nodes vs
  MOST ILP nodes vs wall time), writing JSONL spools and a merged Chrome
  trace (``chrome://tracing`` / Perfetto);
* ``python -m repro explain <corpus>`` — attribute every cell's achieved
  II to its binding constraint (recurrence, resource, register pressure,
  bank pairing, search budget);
* ``python -m repro analyze <corpus> [--check]`` — certified refined II
  lower bounds per loop (MinII → refined bound → achieved II), with every
  certificate independently validated under ``--check``;
* ``python -m repro diff <old> <new> [--strict]`` — attributed regression
  diff of two BENCH_*.json runs (the CI gate); ``--trend`` additionally
  judges the fresh run against the stored run history;
* ``python -m repro trend <name> [--check]`` — classify every metric
  series of the run-history store (``benchmarks/history/``) as stable,
  noisy, drift or step_change, attributing changepoints to commit ranges;
* ``python -m repro report --html`` — assemble the self-contained
  ``report.html`` dashboard (figure tables, II explanations, bench diff);
* ``python -m repro fuzz --seconds N --jobs J`` — coverage-guided
  differential fuzzing of the three pipeliners; oracle violations are
  minimized into ``tests/fuzz_corpus/`` reproducers;
* ``python -m repro serve`` — the scheduling daemon: an asyncio NDJSON
  front end over a batching dispatcher, two-tier result cache and a
  persistent worker pool; ``--selftest`` boots an in-process daemon,
  replays the committed corpora through the wire protocol and emits
  ``benchmarks/output/BENCH_service.json``;
* ``python -m repro cache`` — disk-tier cache statistics and
  ``--prune --max-bytes N`` garbage collection.

The experiment runner and both bench subcommands share the parallel
cached engine: ``--jobs N`` fans cells out over worker processes,
``--cache-dir``/``--no-cache`` control the content-addressed result
cache (an edited kernel, option, or scheduler source invalidates exactly
the affected cells).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from .eval import (
    ExperimentConfig,
    ext_overhead_objective,
    ext_rau_comparison,
    fig2_pipelining_effectiveness,
    fig3_priority_heuristics,
    fig4_membank_effectiveness,
    fig5_ilp_vs_heuristic,
    fig6_livermore,
    fig7_static_quality,
    sec47_compile_speed,
    sec5_ii_parity,
    sec5_scalability,
)

EXPERIMENTS = {
    "fig2": (fig2_pipelining_effectiveness, "SPEC92 fp: pipelining on vs off"),
    "fig3": (fig3_priority_heuristics, "single priority heuristic vs all four"),
    "fig4": (fig4_membank_effectiveness, "memory-bank heuristics on vs off"),
    "fig5": (fig5_ilp_vs_heuristic, "ILP vs MIPSpro, with/without bank pairing"),
    "fig6": (fig6_livermore, "Livermore kernels, short and long trip counts"),
    "fig7": (fig7_static_quality, "registers and overhead, MIPSpro minus ILP"),
    "sec47": (sec47_compile_speed, "compile-speed comparison"),
    "scalability": (sec5_scalability, "largest schedulable loop per technique"),
    "iiparity": (sec5_ii_parity, "how often the ILP finds a lower II"),
    "ext-rau": (ext_rau_comparison, "extension: add Rau94 iterative modulo scheduling"),
    "ext-overhead": (ext_overhead_objective, "extension: overhead-minimising ILP objective"),
}


def _verify_main(argv, parser) -> int:
    """``python -m repro verify <corpus>``: sweep and verify all artifacts."""
    vp = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Independently verify every artifact the pipeliners "
        "produce over a workload corpus (exit 1 on ERROR diagnostics).",
    )
    vp.add_argument(
        "corpus", nargs="?", default="all",
        help="livermore, spec92 or all (default: all)",
    )
    vp.add_argument(
        "--schedulers", default="sgi,most,rau",
        help="comma-separated subset of sgi,most,rau (default: all three)",
    )
    vp.add_argument(
        "--ilp-seconds", type=float, default=2.0,
        help="MOST ILP budget per loop during the sweep (default: 2s)",
    )
    vp.add_argument(
        "-v", "--verbose", action="store_true",
        help="print every diagnostic, warnings included",
    )
    args = vp.parse_args(argv)

    from .verify import verify_corpus

    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    try:
        sweep = verify_corpus(
            args.corpus, schedulers=schedulers, most_time_limit=args.ilp_seconds
        )
    except ValueError as exc:  # unknown corpus / scheduler name
        vp.error(str(exc))
    print(sweep.formatted(verbose=args.verbose))
    return 0 if sweep.ok else 1


def _add_exec_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine flags shared by bench, sweep, and the experiment runner."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes to fan cells out over (default: 1, inline)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache directory",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if --cache-dir is set",
    )


def _bench_main(argv, sweep: bool) -> int:
    """``python -m repro bench`` / ``python -m repro sweep <corpus>``."""
    from .exec.bench import (
        DEFAULT_CACHE_DIR,
        DEFAULT_OUTPUT_DIR,
        BenchOptions,
        run_pipeline_bench,
        run_sweep,
    )

    prog = "python -m repro sweep" if sweep else "python -m repro bench"
    bp = argparse.ArgumentParser(
        prog=prog,
        description="Time every (loop × scheduler) cell of the corpus grid "
        "and write the measurements as a BENCH json.",
    )
    if sweep:
        bp.add_argument("corpus", help="corpus to sweep: livermore, spec92 or recbound")
    bp.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration: livermore + recbound, tighter solver budget",
    )
    _add_exec_arguments(bp)
    bp.set_defaults(cache_dir=DEFAULT_CACHE_DIR)
    bp.add_argument(
        "--schedulers", default="sgi,most,rau,portfolio",
        help="comma-separated subset of sgi,most,rau,baseline,portfolio "
        "(default: sgi,most,rau,portfolio)",
    )
    bp.add_argument(
        "--output-dir", default=str(DEFAULT_OUTPUT_DIR), metavar="DIR",
        help=f"where BENCH_*.json goes (default: {DEFAULT_OUTPUT_DIR})",
    )
    bp.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="hard per-cell deadline (default: 120s, 60s with --quick)",
    )
    bp.add_argument("--seed", type=int, default=0, help="simulation seed (default: 0)")
    bp.add_argument(
        "--trace", action="store_true",
        help="run cells under the repro.obs recorder: obs counters land in "
        "the BENCH json, JSONL spools and a merged Chrome trace in --trace-dir",
    )
    bp.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="trace output directory (default: <output-dir>/trace; implies --trace)",
    )
    bp.add_argument(
        "--explain", action="store_true",
        help="attribute every cell's achieved II to its binding constraint; "
        "explanations land in the BENCH json cells and binding counts in "
        "the summary",
    )
    bp.add_argument(
        "--profile", action="store_true",
        help="instead of benching, cProfile each scheduler's cells inline "
        "and print the top-20 cumulative-time table per scheduler",
    )
    bp.add_argument(
        "--history-dir", default="benchmarks/history", metavar="DIR",
        help="run-history store the finished BENCH payload is appended to "
        "(default: benchmarks/history)",
    )
    bp.add_argument(
        "--no-history", action="store_true",
        help="do not file this run in the run-history store",
    )
    args = bp.parse_args(argv)

    trace = args.trace or args.trace_dir is not None
    trace_dir = args.trace_dir
    if trace and trace_dir is None:
        trace_dir = str(pathlib.Path(args.output_dir) / "trace")
    options = BenchOptions(
        quick=args.quick,
        schedulers=tuple(s.strip() for s in args.schedulers.split(",") if s.strip()),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        seed=args.seed,
        output_dir=args.output_dir,
        trace=trace,
        trace_dir=trace_dir,
        explain=args.explain,
        history_dir=None if args.no_history else pathlib.Path(args.history_dir),
    )
    if args.cell_timeout is not None:
        options.cell_timeout = args.cell_timeout
    if args.profile:
        from .exec.bench import profile_schedulers

        if sweep:
            options.corpora = (args.corpus,)
        for scheduler, table in profile_schedulers(options).items():
            print(f"=== cProfile: {scheduler} ===")
            print(table)
        return 0
    try:
        if sweep:
            report, path = run_sweep(args.corpus, options)
        else:
            report, path = run_pipeline_bench(options)
    except ValueError as exc:  # unknown corpus / scheduler name
        bp.error(str(exc))
    totals = report["totals"]
    cache = report["cache"]
    cache_line = (
        "cache disabled"
        if cache is None
        else f"cache {cache['hits']} hits / {cache['misses']} misses ({cache['dir']})"
    )
    print(
        f"\n{totals['cells']} cells in {report['wall_seconds']:.1f}s "
        f"(jobs={report['jobs']}): {totals['timeouts']} timeouts, "
        f"{totals['fallbacks']} fallbacks, {totals['errors']} errors; {cache_line}"
    )
    print(f"wrote {path}")
    return 1 if totals["errors"] else 0


def _trace_main(argv) -> int:
    """``python -m repro trace <corpus>``: the search-effort profile.

    Runs the (loop × scheduler) grid with tracing on and prints the
    per-loop effort table behind the paper's §4.7 scheduling-time
    comparison.  MOST runs our own branch-and-bound engine here so its
    node and simplex counters are populated; the cache is bypassed because
    counters and timings must come from live solves.
    """
    from .exec.bench import merge_trace_dir
    from .exec.cells import Cell, corpus_loop_keys
    from .exec.runner import ExecEngine
    from .obs import format_effort_table, validate_chrome_trace_file

    tp = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Profile every (loop × scheduler) cell under the "
        "repro.obs recorder: print the per-loop search-effort table and "
        "write JSONL spools plus a merged Chrome trace.",
    )
    tp.add_argument(
        "corpus", nargs="?", default="livermore",
        help="corpus to profile: livermore, spec92 or recbound (default: livermore)",
    )
    tp.add_argument(
        "--schedulers", default="sgi,most,rau",
        help="comma-separated subset of sgi,most,rau (default: all three)",
    )
    tp.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="profile only the first N loops of the corpus",
    )
    tp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes to fan cells out over (default: 1, inline)",
    )
    tp.add_argument(
        "--ilp-seconds", type=float, default=5.0,
        help="MOST ILP budget per loop (default: 5s)",
    )
    tp.add_argument(
        "--max-nodes", type=int, default=4000,
        help="MOST ILP node budget per solve (default: 4000)",
    )
    tp.add_argument(
        "--trace-dir", default="benchmarks/output/trace", metavar="DIR",
        help="where JSONL spools and the merged trace.json go "
        "(default: benchmarks/output/trace)",
    )
    tp.add_argument(
        "--cell-timeout", type=float, default=60.0, metavar="SECONDS",
        help="hard per-cell deadline (default: 60s)",
    )
    tp.add_argument("--seed", type=int, default=0, help="simulation seed (default: 0)")
    tp.add_argument(
        "--check", action="store_true",
        help="validate the JSONL spools and merged Chrome trace; exit "
        "non-zero on schema or nesting problems",
    )
    args = tp.parse_args(argv)

    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    unknown = [s for s in schedulers if s not in ("sgi", "most", "rau")]
    if unknown:
        tp.error(f"unknown schedulers: {', '.join(unknown)}")
    try:
        keys = corpus_loop_keys(args.corpus)
    except ValueError as exc:
        tp.error(str(exc))
    if args.limit is not None:
        keys = keys[: args.limit]

    def sched_options(scheduler: str):
        if scheduler == "most":
            # Our own B&B engine: unlike scipy's HiGHS, it reports nodes
            # and simplex iterations for every solve.
            return {
                "time_limit": args.ilp_seconds,
                "engine": "bnb",
                "max_nodes": args.max_nodes,
                "max_ops": 61,
            }
        return {}

    cells = [
        Cell.make(
            key,
            scheduler,
            sched_options(scheduler),
            seed=args.seed,
            simulate=False,
            verify=False,
            trace=True,
            trace_dir=args.trace_dir,
        )
        for key in keys
        for scheduler in schedulers
    ]
    engine = ExecEngine(jobs=args.jobs, cache=None, default_timeout=args.cell_timeout)
    results = engine.run(cells)
    ordered = [results[cell] for cell in cells]
    print(format_effort_table(ordered))

    merged = merge_trace_dir(args.trace_dir)
    if merged is not None:
        print(f"\nwrote {merged} (load in chrome://tracing or https://ui.perfetto.dev)")
    errors = sum(1 for res in ordered if res.error is not None)
    if errors:
        print(f"{errors} cells errored", file=sys.stderr)
        return 1

    if args.check:
        if merged is None:
            print("--check: no trace files were written", file=sys.stderr)
            return 1
        problems = validate_chrome_trace_file(merged)
        if problems:
            print(f"--check: {merged} is invalid:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        traced = sum(1 for res in ordered if res.obs)
        if not traced:
            print("--check: no cell produced obs counters", file=sys.stderr)
            return 1
        print(f"--check: {merged} valid; {traced}/{len(ordered)} cells traced")
    return 0


def _explain_main(argv) -> int:
    """``python -m repro explain <corpus>``: II-gap attribution.

    Runs every (loop × scheduler) cell of the corpus and attributes its
    achieved II to exactly one binding-constraint class: the critical
    recurrence circuit or bottleneck resource when II == MinII, and a
    classified replay of the failed II−1 attempt (register pressure, bank
    pairing, search budget/exhaustion) when II > MinII.
    """
    ep = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Attribute every (loop × scheduler) cell's achieved II "
        "to its binding constraint.",
    )
    ep.add_argument(
        "corpus", nargs="?", default="livermore",
        help="corpus to explain: livermore, spec92 or recbound (default: livermore)",
    )
    ep.add_argument(
        "--schedulers", default="sgi,most,rau",
        help="comma-separated subset of sgi,most,rau (default: all three)",
    )
    ep.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="explain only the first N loops of the corpus",
    )
    ep.add_argument(
        "--ilp-seconds", type=float, default=5.0,
        help="MOST ILP budget per loop, production run and replay (default: 5s)",
    )
    ep.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the explanations as JSON to this path ('-' for stdout)",
    )
    args = ep.parse_args(argv)

    from .obs.explain import (
        EXPLAIN_SCHEDULERS,
        explain_corpus,
        explanations_to_json,
        format_explanations,
    )

    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    unknown = [s for s in schedulers if s not in EXPLAIN_SCHEDULERS]
    if unknown:
        ep.error(f"unknown schedulers: {', '.join(unknown)}")
    try:
        explanations = explain_corpus(
            args.corpus,
            schedulers=schedulers,
            scheduler_options={"most": {"time_limit": args.ilp_seconds}},
            limit=args.limit,
        )
    except ValueError as exc:  # unknown corpus
        ep.error(str(exc))
    if args.json_out == "-":
        print(explanations_to_json(explanations))
    else:
        print(format_explanations(explanations))
        if args.json_out:
            path = pathlib.Path(args.json_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(explanations_to_json(explanations) + "\n")
            print(f"wrote {path}")
    return 0


def _analyze_main(argv) -> int:
    """``python -m repro analyze <corpus>``: certified II lower bounds.

    Prints, per loop, MinII → the refined certified bound (schedulability
    and allocatability) → the II each pipeliner achieved.  ``--check``
    validates every shipped certificate with the independent checker in
    ``repro.verify`` and cross-checks each achieved or proved-optimal II
    against the certified bounds, exiting non-zero on any failure.
    """
    import json as _json

    ap = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Derive certified refined II lower bounds for every "
        "loop of a corpus and compare them with the achieved IIs.",
    )
    ap.add_argument(
        "corpus", nargs="?", default="livermore",
        help="livermore, spec92, recbound or all (default: livermore)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="validate every certificate with the independent checker and "
        "cross-check achieved IIs against the bounds (exit 1 on failure)",
    )
    ap.add_argument(
        "--schedulers", default="sgi,most,rau",
        help="comma-separated subset of sgi,most,rau, or 'none' for "
        "bounds only (default: all three)",
    )
    ap.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="analyze only the first N loops of the corpus",
    )
    ap.add_argument(
        "--ilp-seconds", type=float, default=2.0,
        help="MOST ILP budget per loop (default: 2s)",
    )
    ap.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the per-loop analysis as JSON ('-' for stdout)",
    )
    ap.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the table legend",
    )
    args = ap.parse_args(argv)

    from .analyze.api import ANALYZE_SCHEDULERS, analyze_corpus

    if args.schedulers.strip() == "none":
        schedulers = []
    else:
        schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
        unknown = [s for s in schedulers if s not in ANALYZE_SCHEDULERS]
        if unknown:
            ap.error(f"unknown schedulers: {', '.join(unknown)}")
    try:
        report = analyze_corpus(
            args.corpus,
            schedulers=schedulers,
            check=args.check,
            limit=args.limit,
            most_time_limit=args.ilp_seconds,
        )
    except ValueError as exc:  # unknown corpus
        ap.error(str(exc))
    payload = _json.dumps(
        [e.to_dict() for e in report.entries], indent=1, sort_keys=True
    )
    if args.json_out == "-":
        print(payload)
    else:
        print(report.formatted(verbose=args.verbose))
        if args.json_out:
            path = pathlib.Path(args.json_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(payload + "\n")
            print(f"wrote {path}")
    return 0 if report.ok else 1


def _report_main(argv) -> int:
    """``python -m repro report --html``: the one-file dashboard."""
    from .obs.diffbench import load_bench
    from .obs.explain import explain_corpus
    from .obs.html import validate_report_file, write_report

    rp = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Assemble figure tables, per-loop II explanations and "
        "the bench diff into one self-contained report.html (inline CSS/JS, "
        "opens offline).",
    )
    rp.add_argument(
        "--html", action="store_true",
        help="write the HTML dashboard (the default and only format; "
        "accepted for explicitness)",
    )
    rp.add_argument(
        "--output", default="benchmarks/output/report.html", metavar="PATH",
        help="where report.html goes (default: benchmarks/output/report.html)",
    )
    rp.add_argument(
        "--corpus", default="livermore",
        help="corpus for the II-explanation panel (default: livermore)",
    )
    rp.add_argument(
        "--schedulers", default="sgi,most,rau",
        help="schedulers for the II-explanation panel (default: all three)",
    )
    rp.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="explain only the first N loops of the corpus",
    )
    rp.add_argument(
        "--experiments", default="fig2,fig3,fig4,fig5,fig6,fig7",
        help="comma-separated experiment names for the figure-table panel, "
        "or 'none' (default: fig2..fig7)",
    )
    rp.add_argument(
        "--ilp-seconds", type=float, default=5.0,
        help="MOST ILP budget per loop (default: 5s)",
    )
    rp.add_argument(
        "--bench", default="benchmarks/output", metavar="PATH",
        help="BENCH json (file or directory) for the bench panel; skipped "
        "when absent (default: benchmarks/output)",
    )
    rp.add_argument(
        "--baseline", default="benchmarks/baseline", metavar="PATH",
        help="baseline BENCH json for the diff panel; skipped when absent "
        "(default: benchmarks/baseline)",
    )
    rp.add_argument(
        "--history-dir", default="benchmarks/history", metavar="DIR",
        help="run-history store for the trend panel; renders a placeholder "
        "when it holds fewer than two runs (default: benchmarks/history)",
    )
    rp.add_argument(
        "--history-last", type=int, default=20, metavar="N",
        help="trend panel looks at the last N stored runs (default: 20)",
    )
    _add_exec_arguments(rp)
    rp.add_argument(
        "--check", action="store_true",
        help="validate the written report (well-formedness, panel presence); "
        "exit non-zero on problems",
    )
    args = rp.parse_args(argv)

    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    print(f"explaining {args.corpus} × {','.join(schedulers)} ...", flush=True)
    try:
        explanations = explain_corpus(
            args.corpus,
            schedulers=schedulers,
            scheduler_options={"most": {"time_limit": args.ilp_seconds}},
            limit=args.limit,
        )
    except ValueError as exc:
        rp.error(str(exc))

    tables, charts = [], []
    names = [] if args.experiments == "none" else [
        n.strip() for n in args.experiments.split(",") if n.strip()
    ]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        rp.error(f"unknown experiments: {', '.join(unknown)}")
    config = ExperimentConfig(
        most_time_limit=args.ilp_seconds,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    for name in names:
        print(f"running {name} ...", flush=True)
        result = EXPERIMENTS[name][0](config)
        tables.append(result.table)
        if result.chart:
            charts.append(result.chart)

    bench = diff = None
    try:
        bench = load_bench(args.bench)
    except (FileNotFoundError, OSError):
        print(f"no bench json under {args.bench}; bench panel skipped")
    if bench is not None:
        from .obs.diffbench import diff_reports

        try:
            diff = diff_reports(load_bench(args.baseline), bench)
        except (FileNotFoundError, OSError):
            print(f"no baseline under {args.baseline}; diff panel skipped")

    from .obs.trend import history_panel_data

    history = history_panel_data(
        pathlib.Path(args.history_dir), last=args.history_last
    )

    meta = {
        "corpus": args.corpus,
        "schedulers": ",".join(schedulers),
        "experiments": ",".join(names) or "none",
    }
    path = write_report(
        args.output,
        meta=meta,
        explanations=explanations,
        tables=tables,
        charts=charts,
        diff=diff,
        bench=bench,
        history=history,
    )
    print(f"wrote {path}")

    if args.check:
        required = ["explanations"] if explanations else []
        if tables or charts:
            required.append("figures")
        if diff is not None:
            required.append("diff")
        if bench is not None:
            required.append("bench")
        # The history panel always renders (placeholder when <2 runs).
        required.append("history")
        problems = validate_report_file(path, required)
        if problems:
            print(f"--check: {path} is invalid:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"--check: {path} valid ({', '.join(required) or 'no panels'})")
    return 0


def _fuzz_main(argv) -> int:
    """``python -m repro fuzz``: coverage-guided differential fuzzing.

    Exit status encodes the session's meaning: without ``--inject``, any
    finding is a live bug and the exit code is non-zero; under
    ``--inject`` the seeded fault *must* be found (a calibration run of
    the oracle), so zero findings is the failure.
    """
    from .fuzz import INJECTIONS, FuzzConfig, run_fuzz
    from .fuzz.corpus import DEFAULT_CORPUS_DIR

    fp = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Generate loops by mutation and crossover, run them "
        "through sgi, most and rau under a layered differential oracle "
        "(crash / independent verify / functional sim / MinII / proved "
        "optimality), and minimize any violation into a reproducer in "
        "the regression corpus.",
    )
    fp.add_argument(
        "--seconds", type=float, default=60.0,
        help="fuzzing wall-clock budget (default: 60)",
    )
    fp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes to fan cells out over (default: 1)",
    )
    fp.add_argument("--seed", type=int, default=0, help="session seed (default: 0)")
    fp.add_argument(
        "--schedulers", default="sgi,most,rau",
        help="comma-separated subset of sgi,most,rau,portfolio "
        "(default: sgi,most,rau)",
    )
    fp.add_argument(
        "--oracle", default=None, choices=("backend-agreement",),
        help="enable an extra oracle layer; 'backend-agreement' adds the "
        "portfolio scheduler (cross-check on) so every generated loop "
        "also races the CP and ILP backends against each other",
    )
    fp.add_argument(
        "--inject", default=None, choices=sorted(INJECTIONS),
        help="seed a known fault into the pipeline; the session then "
        "verifies the oracle catches it (exit 1 if it does not)",
    )
    fp.add_argument(
        "--max-ops", type=int, default=16,
        help="corpus-admission cap on generated loop size (default: 16)",
    )
    fp.add_argument(
        "--max-loops", type=int, default=None, metavar="N",
        help="stop after N generated loops even if time remains",
    )
    fp.add_argument(
        "--corpus-dir", default=DEFAULT_CORPUS_DIR, metavar="DIR",
        help=f"regression corpus directory (default: {DEFAULT_CORPUS_DIR})",
    )
    fp.add_argument(
        "--no-write", action="store_true",
        help="do not write minimized reproducers into the corpus",
    )
    fp.add_argument(
        "--findings-dir", default=None, metavar="DIR",
        help="also copy new reproducers here (CI artifact upload)",
    )
    fp.add_argument(
        "--cell-timeout", type=float, default=20.0, metavar="SECONDS",
        help="hard per-cell deadline (default: 20s)",
    )
    args = fp.parse_args(argv)

    schedulers = tuple(s.strip() for s in args.schedulers.split(",") if s.strip())
    unknown = [s for s in schedulers if s not in ("sgi", "most", "rau", "portfolio")]
    if unknown:
        fp.error(f"unknown schedulers: {', '.join(unknown)}")
    if args.oracle == "backend-agreement" and "portfolio" not in schedulers:
        schedulers = schedulers + ("portfolio",)
    config = FuzzConfig(
        seconds=args.seconds,
        jobs=args.jobs,
        seed=args.seed,
        schedulers=schedulers,
        max_ops=args.max_ops,
        cell_timeout=args.cell_timeout,
        inject=args.inject,
        corpus_dir=args.corpus_dir,
        write=not args.no_write,
        findings_dir=args.findings_dir,
        max_loops=args.max_loops,
    )
    report = run_fuzz(config, log=print)
    stats = report.stats
    print(
        f"\n{stats.loops} loops ({stats.cells} cells) in "
        f"{stats.wall_seconds:.1f}s: {stats.violations} violations, "
        f"{len(report.findings)} distinct findings, "
        f"coverage {stats.coverage_keys} keys, corpus {stats.corpus_size}"
    )
    if args.inject:
        caught = [f for f in report.findings if f.reproduced]
        if not caught:
            print(f"injected fault {args.inject!r} was NOT caught", file=sys.stderr)
            return 1
        print(f"injected fault {args.inject!r} caught and minimized")
        return 0
    return 1 if report.findings else 0


def _serve_main(argv) -> int:
    """``python -m repro serve``: the scheduling daemon (or its selftest)."""
    from .exec.cache import DEFAULT_CACHE_DIR

    sp = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the scheduling daemon: newline-delimited JSON "
        "requests over TCP and/or a unix socket, batched onto a persistent "
        "worker pool behind a two-tier (memory LRU + disk) result cache. "
        "--selftest instead boots an in-process daemon on a temporary unix "
        "socket, replays the committed corpora through the wire protocol "
        "at the requested concurrency and writes BENCH_service.json.",
    )
    sp.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default: 127.0.0.1)",
    )
    sp.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="TCP port to listen on (0 = ephemeral; omit for no TCP listener)",
    )
    sp.add_argument(
        "--unix", default=None, metavar="PATH",
        help="unix socket path to listen on (daemon needs --port and/or --unix)",
    )
    sp.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="persistent worker processes (0 = in-process threads; default: 2)",
    )
    sp.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="bounded admission queue depth; beyond it requests are shed "
        "with an 'overloaded' + retry_after response (default: 64)",
    )
    sp.add_argument(
        "--batch-window-ms", type=float, default=5.0, metavar="MS",
        help="how long the dispatcher coalesces arrivals into one batch "
        "(default: 5ms)",
    )
    sp.add_argument(
        "--batch-max", type=int, default=32, metavar="N",
        help="max requests per dispatch batch (default: 32)",
    )
    sp.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"disk tier of the result cache (default: {DEFAULT_CACHE_DIR})",
    )
    sp.add_argument(
        "--no-cache", action="store_true",
        help="run memory-only (no disk cache tier)",
    )
    sp.add_argument(
        "--lru-entries", type=int, default=1024, metavar="N",
        help="in-process LRU entry budget (default: 1024)",
    )
    sp.add_argument(
        "--lru-mb", type=float, default=64.0, metavar="MB",
        help="in-process LRU byte budget in MiB (default: 64)",
    )
    sp.add_argument(
        "--default-budget", type=float, default=60.0, metavar="SECONDS",
        help="per-request wall-clock budget when the request sets none "
        "(default: 60s)",
    )
    sp.add_argument(
        "--max-budget", type=float, default=300.0, metavar="SECONDS",
        help="server-side clamp on request budgets (default: 300s)",
    )
    sp.add_argument(
        "--drain-timeout", type=float, default=60.0, metavar="SECONDS",
        help="max seconds SIGTERM waits for in-flight work (default: 60s)",
    )
    sp.add_argument(
        "--metrics-port", type=int, default=None, metavar="N",
        help="also serve Prometheus text metrics over HTTP on this port "
        "(0 = ephemeral; GET /metrics)",
    )
    sp.add_argument(
        "--slow-log", default=None, metavar="PATH",
        help="append requests slower than --slow-ms to this NDJSON file",
    )
    sp.add_argument(
        "--slow-ms", type=float, default=1000.0, metavar="MS",
        help="slow-request log latency threshold (default: 1000ms)",
    )
    sp.add_argument(
        "--gauge-interval", type=float, default=5.0, metavar="SECONDS",
        help="queue-depth/hit-rate gauge sampling period, 0 to disable "
        "(default: 5s)",
    )
    sp.add_argument(
        "--selftest", action="store_true",
        help="boot an in-process daemon, load it over the wire protocol, "
        "write BENCH_service.json and exit non-zero on any protocol, "
        "cell, verify or equivalence problem",
    )
    sp.add_argument(
        "--requests", type=int, default=240, metavar="N",
        help="selftest: total requests across the warm + replay phases "
        "(default: 240)",
    )
    sp.add_argument(
        "--concurrency", type=int, default=16, metavar="N",
        help="selftest: concurrent client connections (default: 16)",
    )
    sp.add_argument(
        "--budget", type=float, default=60.0, metavar="SECONDS",
        help="selftest: per-request budget (default: 60s)",
    )
    sp.add_argument(
        "--seed", type=int, default=0,
        help="selftest: replay-shuffle seed (default: 0)",
    )
    sp.add_argument(
        "--check-equivalence", action="store_true",
        help="selftest: re-run every distinct cell through the direct exec "
        "engine and fail on any result difference",
    )
    sp.add_argument(
        "--output-dir", default="benchmarks/output", metavar="DIR",
        help="selftest: where BENCH_service.json goes "
        "(default: benchmarks/output)",
    )
    sp.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="selftest: also append BENCH_service to this run-history store "
        "(e.g. benchmarks/history; default: off)",
    )
    args = sp.parse_args(argv)

    from .serve.service import ServeConfig

    config = ServeConfig(
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        batch_window=args.batch_window_ms / 1e3,
        batch_max=args.batch_max,
        cache_dir=None if args.no_cache else args.cache_dir,
        lru_entries=args.lru_entries,
        lru_bytes=int(args.lru_mb * (1 << 20)),
        default_budget=args.default_budget,
        max_budget=args.max_budget,
        drain_timeout=args.drain_timeout,
        slow_log_path=args.slow_log,
        slow_ms=args.slow_ms,
        gauge_interval=args.gauge_interval,
    )

    if args.selftest:
        from .serve.loadgen import (
            LoadgenOptions,
            format_summary,
            run_selftest,
        )

        options = LoadgenOptions(
            requests=args.requests,
            concurrency=args.concurrency,
            budget=args.budget,
            seed=args.seed,
            output_dir=args.output_dir,
            history_dir=args.history_dir,
        )
        report, path, problems = run_selftest(
            options,
            jobs=args.jobs,
            equivalence=args.check_equivalence,
            config=config,
            log=lambda line: print(line, file=sys.stderr, flush=True),
        )
        print(format_summary(report))
        print(f"wrote {path}")
        if problems:
            print("selftest FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("selftest ok"
              + (" (daemon matches the direct engine)"
                 if args.check_equivalence else ""))
        return 0

    if args.port is None and args.unix is None:
        sp.error("daemon mode needs --port and/or --unix (or use --selftest)")
    from .serve.daemon import run_daemon

    return run_daemon(config, host=args.host, port=args.port, unix_path=args.unix,
                      metrics_port=args.metrics_port)


def _cache_main(argv) -> int:
    """``python -m repro cache``: disk-tier statistics and pruning."""
    from .exec.cache import DEFAULT_CACHE_DIR, ScheduleCache

    cp = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect the content-addressed schedule result cache "
        "(entries, bytes, shard fill) and optionally prune it to a byte "
        "budget, oldest entries first.",
    )
    cp.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    cp.add_argument(
        "--prune", action="store_true",
        help="garbage-collect the cache down to --max-bytes",
    )
    cp.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="byte budget for --prune (also accepts --max-mb)",
    )
    cp.add_argument(
        "--max-mb", type=float, default=None, metavar="MB",
        help="byte budget for --prune, in MiB",
    )
    cp.add_argument(
        "--json", dest="json_out", action="store_true",
        help="print the stats as JSON",
    )
    args = cp.parse_args(argv)

    import json as _json

    cache = ScheduleCache(args.cache_dir)
    if args.prune:
        max_bytes = args.max_bytes
        if max_bytes is None and args.max_mb is not None:
            max_bytes = int(args.max_mb * (1 << 20))
        if max_bytes is None:
            cp.error("--prune needs --max-bytes N or --max-mb MB")
        before = cache.disk_stats()
        pruned = cache.prune(max_bytes)
        print(
            f"pruned {pruned['removed']} of {before['entries']} entries "
            f"({pruned['freed_bytes']} bytes freed, "
            f"{pruned['tmp_removed']} stale tmp files); "
            f"{pruned['kept']} entries / {pruned['kept_bytes']} bytes kept"
        )
        return 0
    stats = cache.disk_stats()
    if args.json_out:
        print(_json.dumps(stats, indent=1, sort_keys=True))
        return 0
    print(f"cache dir     {stats['dir']}")
    print(f"entries       {stats['entries']}")
    print(f"bytes         {stats['bytes']}")
    print(f"shards used   {stats['shards_used']} ({stats['shard_fill']:.2%} of 65536)")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Software Pipelining Showdown experiments.",
    )
    if argv[:1] == ["verify"]:
        return _verify_main(argv[1:], parser)
    if argv[:1] == ["bench"]:
        return _bench_main(argv[1:], sweep=False)
    if argv[:1] == ["sweep"]:
        return _bench_main(argv[1:], sweep=True)
    if argv[:1] == ["trace"]:
        return _trace_main(argv[1:])
    if argv[:1] == ["explain"]:
        return _explain_main(argv[1:])
    if argv[:1] == ["analyze"]:
        return _analyze_main(argv[1:])
    if argv[:1] == ["diff"]:
        from .obs.diffbench import main as diffbench_main

        return diffbench_main(argv[1:])
    if argv[:1] == ["trend"]:
        from .obs.trend import main as trend_main

        return trend_main(argv[1:])
    if argv[:1] == ["report"]:
        return _report_main(argv[1:])
    if argv[:1] == ["fuzz"]:
        return _fuzz_main(argv[1:])
    if argv[:1] == ["serve"]:
        return _serve_main(argv[1:])
    if argv[:1] == ["cache"]:
        return _cache_main(argv[1:])
    parser.add_argument(
        "experiments", nargs="*", help="experiment names (see --list); 'all' runs "
        "every one; 'verify <corpus>' runs the static verification sweep; "
        "'bench'/'sweep' time the corpus grid and emit BENCH json; "
        "'explain <corpus>' attributes II gaps; 'diff <old> <new>' compares "
        "BENCH runs; 'trend <name>' classifies run-history series; "
        "'report --html' writes the dashboard; 'fuzz' runs the "
        "differential fuzzer; 'serve' runs the scheduling daemon; 'cache' "
        "inspects/prunes the result cache",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--corpus", action="store_true",
        help="print the workload corpus profiles (Livermore + SPEC92-like) and exit",
    )
    parser.add_argument(
        "--ilp-seconds", type=float, default=10.0,
        help="ILP budget per loop (paper: 180s; default: 10s)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="verify every pipelined loop while experiments run; exit non-zero "
        "on any ERROR diagnostic",
    )
    _add_exec_arguments(parser)
    parser.add_argument(
        "--bench-json", action="store_true",
        help="also write each experiment's cell measurements as "
        "benchmarks/output/BENCH_<name>.json",
    )
    args = parser.parse_args(argv)

    if args.corpus:
        from .eval.corpus import livermore_profile, spec92_profile

        print(livermore_profile().formatted())
        print()
        print(spec92_profile().formatted())
        return 0

    if args.list or not args.experiments:
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, blurb) in EXPERIMENTS.items():
            print(f"  {name.ljust(width)}  {blurb}")
        return 0

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    if args.strict:
        from .verify import set_default_verify

        set_default_verify(True)
    config = ExperimentConfig(
        most_time_limit=args.ilp_seconds,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    for name in names:
        start = time.perf_counter()
        try:
            result = EXPERIMENTS[name][0](config)
        except Exception as exc:
            from .verify import VerificationError

            if args.strict and isinstance(exc, VerificationError):
                print(f"[{name}] verification failed:\n{exc}", file=sys.stderr)
                return 1
            raise
        print(result.formatted())
        if args.bench_json and result.cells:
            from .exec.bench import figure_report, write_bench_json

            path = write_bench_json(figure_report(result.name, result.cells))
            print(f"[{name}: wrote {path}]")
        print(f"\n[{name}: {time.perf_counter() - start:.1f}s]\n")
        sys.stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
