"""Experiment cells: the unit of work the parallel engine fans out.

A *cell* is one (loop, scheduler, options) combination, exactly what the
sequential experiment drivers used to evaluate inline.  Cells reference
loops by *registry key* (``livermore:lk01_hydro``, ``spec92:alvinn/...``)
rather than by value: workers re-materialise the loop from the workload
modules, which keeps cells trivially picklable and lets the cache key
incorporate the loop IR's content hash — an edited kernel invalidates its
own entries automatically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000

SCHEDULERS = ("sgi", "most", "rau", "baseline", "portfolio")


# ----------------------------------------------------------------------
# The loop registry: key -> Loop
# ----------------------------------------------------------------------
def _livermore(rest: str, machine: MachineDescription) -> Loop:
    from ..workloads.livermore import livermore_kernels

    for loop in livermore_kernels(machine):
        if loop.name == rest:
            return loop
    raise KeyError(f"no Livermore kernel named {rest!r}")


def _spec92(rest: str, machine: MachineDescription) -> Loop:
    from ..workloads.spec92 import spec92_suite

    bench_name, _, loop_name = rest.partition("/")
    for bench in spec92_suite(machine):
        if bench.name != bench_name:
            continue
        for loop in bench.loops:
            if loop.name == loop_name:
                return loop
        raise KeyError(f"benchmark {bench_name!r} has no loop {loop_name!r}")
    raise KeyError(f"no SPEC92 benchmark named {bench_name!r}")


def _scaling(rest: str, machine: MachineDescription) -> Loop:
    from ..workloads.generators import scaling_series

    return scaling_series([int(rest)], machine=machine)[0]


def _random(rest: str, machine: MachineDescription) -> Loop:
    from ..workloads.generators import random_loop

    return random_loop(int(rest), machine=machine)


def _fuzz(rest: str, machine: MachineDescription) -> Loop:
    from ..workloads.mutate import spec_from_token

    return spec_from_token(rest).build(machine)


def _recbound(rest: str, machine: MachineDescription) -> Loop:
    from ..workloads.recbound import recbound_kernel

    return recbound_kernel(rest, machine)


#: Loop sources by key prefix.  Tests may register extra sources (or shadow
#: existing ones) to model IR drift without editing workload modules.
LOOP_SOURCES: Dict[str, Callable[[str, MachineDescription], Loop]] = {
    "livermore": _livermore,
    "spec92": _spec92,
    "scaling": _scaling,
    "random": _random,
    "fuzz": _fuzz,
    "recbound": _recbound,
}

#: Sources whose keys are one-shot (fuzz tokens: every generated loop is a
#: new key, so memoising them would only grow the per-process memo without
#: ever hitting).
UNMEMOIZED_SOURCES = frozenset({"fuzz"})

_LOOP_MEMO: Dict[Tuple[str, str], Loop] = {}


def resolve_loop(key: str, machine: Optional[MachineDescription] = None) -> Loop:
    """Materialise the loop a registry key names (memoised per process)."""
    machine = machine if machine is not None else r8000()
    memo_key = (key, machine.name)
    if memo_key in _LOOP_MEMO:
        return _LOOP_MEMO[memo_key]
    prefix, _, rest = key.partition(":")
    try:
        source = LOOP_SOURCES[prefix]
    except KeyError:
        raise KeyError(
            f"unknown loop source {prefix!r} in {key!r} "
            f"(known: {', '.join(sorted(LOOP_SOURCES))})"
        ) from None
    loop = source(rest, machine)
    if prefix not in UNMEMOIZED_SOURCES:
        _LOOP_MEMO[memo_key] = loop
    return loop


def clear_loop_memo() -> None:
    """Drop the per-process loop memo (tests mutate ``LOOP_SOURCES``)."""
    _LOOP_MEMO.clear()


def corpus_loop_keys(corpus: str, machine: Optional[MachineDescription] = None) -> List[str]:
    """All registry keys of a named corpus (``livermore``, ``spec92`` or
    ``recbound``)."""
    machine = machine if machine is not None else r8000()
    if corpus == "livermore":
        from ..workloads.livermore import livermore_kernels

        return [f"livermore:{loop.name}" for loop in livermore_kernels(machine)]
    if corpus == "spec92":
        from ..workloads.spec92 import spec92_suite

        return [
            f"spec92:{bench.name}/{loop.name}"
            for bench in spec92_suite(machine)
            for loop in bench.loops
        ]
    if corpus == "recbound":
        from ..workloads.recbound import recbound_kernels

        return [f"recbound:{loop.name}" for loop in recbound_kernels(machine)]
    raise ValueError(
        f"unknown corpus {corpus!r} (expected livermore, spec92 or recbound)"
    )


# ----------------------------------------------------------------------
# Cells and their results
# ----------------------------------------------------------------------
def canonical_options(options: Optional[Mapping[str, Any]]) -> str:
    """Canonical JSON for an options mapping (sorted keys, no whitespace)."""
    return json.dumps(dict(options or {}), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Cell:
    """One schedulable unit: a loop, a scheduler, and its options.

    ``options_json`` is canonical JSON so cells are hashable dict keys and
    byte-identical options always map to the same cache entry.  ``trips``
    lists extra trip counts to simulate beyond the loop's nominal one;
    ``timeout`` is the hard per-cell wall-clock deadline enforced in the
    worker.  ``trace`` records the scheduler's search through ``repro.obs``
    (folded counters plus a per-cell JSONL event spool when ``trace_dir``
    is set); it participates in the cache key — traced and untraced results
    differ in payload — but ``trace_dir`` is just an output location and
    does not.  ``explain`` additionally attributes the cell's achieved II
    to its binding constraint (:mod:`repro.obs.explain`); like ``trace``
    it changes the result payload and therefore the cache key.  ``oracle``
    runs the fuzzer's dynamic oracle layers after scheduling — independent
    re-verification into ``verify_errors`` and a functional-equivalence
    simulation against the sequential reference into ``funcsim_ok`` — and
    also participates in the cache key.  ``analyze`` computes the certified
    refined II lower bound (:mod:`repro.analyze`) on the pristine loop and
    stores it (plus the full certificate payload) in the result; it changes
    the result payload and therefore participates in the cache key.
    """

    loop: str
    scheduler: str
    options_json: str = "{}"
    trips: Tuple[int, ...] = ()
    seed: int = 0
    timeout: Optional[float] = None
    simulate: bool = True
    verify: Optional[bool] = None
    trace: bool = False
    trace_dir: Optional[str] = None
    explain: bool = False
    oracle: bool = False
    analyze: bool = False

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r} (expected one of {SCHEDULERS})"
            )

    @classmethod
    def make(
        cls,
        loop: str,
        scheduler: str,
        options: Optional[Mapping[str, Any]] = None,
        trips: Tuple[int, ...] = (),
        seed: int = 0,
        timeout: Optional[float] = None,
        simulate: bool = True,
        verify: Optional[bool] = None,
        trace: bool = False,
        trace_dir: Optional[str] = None,
        explain: bool = False,
        oracle: bool = False,
        analyze: bool = False,
    ) -> "Cell":
        return cls(
            loop=loop,
            scheduler=scheduler,
            options_json=canonical_options(options),
            trips=tuple(trips),
            seed=seed,
            timeout=timeout,
            simulate=simulate,
            verify=verify,
            trace=trace,
            trace_dir=trace_dir,
            explain=explain,
            oracle=oracle,
            analyze=analyze,
        )

    @property
    def options(self) -> Dict[str, Any]:
        return json.loads(self.options_json)

    @property
    def label(self) -> str:
        opts = "" if self.options_json == "{}" else f" {self.options_json}"
        return f"{self.loop} × {self.scheduler}{opts}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loop": self.loop,
            "scheduler": self.scheduler,
            "options_json": self.options_json,
            "trips": list(self.trips),
            "seed": self.seed,
            "timeout": self.timeout,
            "simulate": self.simulate,
            "verify": self.verify,
            "trace": self.trace,
            "trace_dir": self.trace_dir,
            "explain": self.explain,
            "oracle": self.oracle,
            "analyze": self.analyze,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Cell":
        return cls(
            loop=data["loop"],
            scheduler=data["scheduler"],
            options_json=data.get("options_json", "{}"),
            trips=tuple(data.get("trips", ())),
            seed=data.get("seed", 0),
            timeout=data.get("timeout"),
            simulate=data.get("simulate", True),
            verify=data.get("verify"),
            trace=data.get("trace", False),
            trace_dir=data.get("trace_dir"),
            explain=data.get("explain", False),
            oracle=data.get("oracle", False),
            analyze=data.get("analyze", False),
        )


@dataclass
class CellResult:
    """Everything one cell's execution measured, JSON-serialisable.

    ``sim_cycles`` maps a trip-count label (``"default"`` or the decimal
    trip count) to simulated cycles including pipeline overhead.
    ``schedule_seconds`` is the scheduler-reported search time;
    ``wall_seconds`` the worker's wall clock for the whole cell.
    """

    loop: str
    scheduler: str
    options_json: str = "{}"
    success: bool = False
    error: Optional[str] = None
    n_ops: int = 0
    ii: Optional[int] = None
    min_ii: int = 0
    schedule_seconds: float = 0.0
    sched_wall_seconds: float = 0.0  # wall clock around the scheduler call only
    wall_seconds: float = 0.0
    timeout: bool = False
    fallback: bool = False
    optimal: bool = False
    producer: str = ""
    order_name: str = ""
    spill_rounds: int = 0
    n_stages: Optional[int] = None
    registers_used: Optional[int] = None
    overhead_cycles: Optional[int] = None
    sim_cycles: Dict[str, float] = field(default_factory=dict)
    # Search-effort counters folded from repro.obs when the cell was traced
    # (B&B nodes, ILP nodes, simplex iterations, ...), and the per-cell
    # JSONL event spool, when one was written.
    obs: Dict[str, float] = field(default_factory=dict)
    trace_file: Optional[str] = None
    # Binding-constraint attribution (repro.obs.explain) when the cell was
    # run with ``explain=True``: an IIExplanation.to_dict() payload.
    explanation: Optional[Dict[str, Any]] = None
    # Fuzz-oracle layers, filled when the cell was run with ``oracle=True``:
    # independent-verifier errors ("RULE: message" strings; empty = clean)
    # and whether the pipelined functional simulation matched the
    # sequential reference (None = oracle off or nothing to simulate).
    verify_errors: List[str] = field(default_factory=list)
    funcsim_ok: Optional[bool] = None
    funcsim_detail: str = ""
    # Certified refined II lower bound (repro.analyze) when the cell was run
    # with ``analyze=True``: the bound itself and the full LoopBounds payload
    # (certificates included), both computed on the pristine loop before any
    # seeded fault injection.
    refined_bound: Optional[int] = None
    bounds: Optional[Dict[str, Any]] = None
    # Portfolio cells only: per-backend solve seconds and the (II, backend,
    # answer) probe trail the cross-backend agreement oracle audits.
    backend_seconds: Dict[str, float] = field(default_factory=dict)
    backend_probes: List[Dict[str, Any]] = field(default_factory=list)
    # Filled in by the engine, not the worker:
    cache_hit: bool = False
    cache_key: str = ""
    attempts: int = 1

    def cycles(self, trips: Optional[int] = None) -> float:
        """Simulated cycles at a trip count requested by the cell."""
        label = "default" if trips is None else str(trips)
        try:
            return self.sim_cycles[label]
        except KeyError:
            raise KeyError(
                f"cell {self.loop} × {self.scheduler} did not simulate trips={label}"
            ) from None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loop": self.loop,
            "scheduler": self.scheduler,
            "options_json": self.options_json,
            "success": self.success,
            "error": self.error,
            "n_ops": self.n_ops,
            "ii": self.ii,
            "min_ii": self.min_ii,
            "schedule_seconds": self.schedule_seconds,
            "sched_wall_seconds": self.sched_wall_seconds,
            "wall_seconds": self.wall_seconds,
            "timeout": self.timeout,
            "fallback": self.fallback,
            "optimal": self.optimal,
            "producer": self.producer,
            "order_name": self.order_name,
            "spill_rounds": self.spill_rounds,
            "n_stages": self.n_stages,
            "registers_used": self.registers_used,
            "overhead_cycles": self.overhead_cycles,
            "sim_cycles": dict(self.sim_cycles),
            "obs": dict(self.obs),
            "trace_file": self.trace_file,
            "explanation": self.explanation,
            "verify_errors": list(self.verify_errors),
            "funcsim_ok": self.funcsim_ok,
            "funcsim_detail": self.funcsim_detail,
            "refined_bound": self.refined_bound,
            "bounds": self.bounds,
            "backend_seconds": dict(self.backend_seconds),
            "backend_probes": list(self.backend_probes),
            "cache_hit": self.cache_hit,
            "cache_key": self.cache_key,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellResult":
        known = {f for f in cls.__dataclass_fields__}  # tolerate future fields
        return cls(**{k: v for k, v in data.items() if k in known})
