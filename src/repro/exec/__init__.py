"""repro.exec — the parallel, cached experiment engine.

The paper's experiments are a grid of independent (loop, scheduler,
options) *cells*; this package fans them out over worker processes with
per-cell wall-clock deadlines (a stuck ILP solve kills only its own cell
and is rescued by the heuristic, with honest timeout/fallback accounting),
caches results content-addressed by loop IR + machine + options + code
version, and emits machine-readable ``BENCH_*.json`` artefacts.  The
experiment drivers in :mod:`repro.eval` and the ``bench``/``sweep`` CLI
subcommands are built on it.
"""

from .cache import DEFAULT_CACHE_DIR, CacheStats, ScheduleCache
from .cells import (
    Cell,
    CellResult,
    LOOP_SOURCES,
    SCHEDULERS,
    canonical_options,
    clear_loop_memo,
    corpus_loop_keys,
    resolve_loop,
)
from .bench import (
    BENCH_CELL_FIELDS,
    BenchOptions,
    bench_cells,
    build_report,
    figure_report,
    print_progress,
    run_pipeline_bench,
    run_sweep,
    summarise,
    write_bench_json,
)
from .hashing import cell_key, code_version, fingerprint_loop, fingerprint_machine
from .runner import CellTimeout, ExecEngine, execute_cell

__all__ = [
    "BENCH_CELL_FIELDS",
    "BenchOptions",
    "Cell",
    "CellResult",
    "CellTimeout",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "ExecEngine",
    "LOOP_SOURCES",
    "SCHEDULERS",
    "ScheduleCache",
    "bench_cells",
    "build_report",
    "canonical_options",
    "cell_key",
    "clear_loop_memo",
    "code_version",
    "corpus_loop_keys",
    "execute_cell",
    "figure_report",
    "fingerprint_loop",
    "fingerprint_machine",
    "print_progress",
    "run_pipeline_bench",
    "run_sweep",
    "summarise",
    "write_bench_json",
]
