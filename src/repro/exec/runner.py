"""The parallel experiment engine: fan-out, deadlines, retries, caching.

Cells are independent, so the engine fans them out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The paper's cost story
(an optimal pipeliner ~250x slower than the heuristic) makes two disciplines
non-negotiable, both borrowed from the combinatorial-scheduling literature's
per-instance budgets:

* **hard per-cell deadlines, enforced in the worker** — a wedged ILP solve
  raises :class:`CellTimeout` (via ``SIGALRM`` on the main thread, via a
  watchdog timer and the async-exception hook on executor threads — the
  serving daemon's path) and kills only its own cell; the worker then runs
  the heuristic pipeliner and records the cell as ``timeout=True,
  fallback=True``, mirroring how MOST itself backs off;
* **fallback accounting** — timeout and fallback flags travel with every
  result, so aggregate numbers can always separate native solves from
  rescued ones.

Transient worker deaths (OOM kill, interpreter crash) break the whole pool;
the engine rebuilds it and re-runs the unfinished cells, giving each cell
one retry before recording an error result.  With ``jobs=1`` everything
runs inline through the *same* worker function, so parallel and serial runs
are byte-identical apart from wall-clock fields.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence

from ..machine.descriptions import MachineDescription, r8000
from ..obs import TraceRecorder, recording, write_jsonl
from .cache import ScheduleCache
from .cells import Cell, CellResult, resolve_loop
from .hashing import cell_key, fingerprint_loop, fingerprint_machine


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds its wall-clock deadline."""


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
class _SignalDeadline:
    """Arms ``SIGALRM`` for the duration of a ``with`` block.

    Only the main thread of a process can receive the alarm (the CLI worker
    path, where the pool's worker processes execute cells on their main
    thread).  A C-level solve is interrupted at the next bytecode boundary
    after the signal fires.
    """

    def __init__(self, seconds: float):
        self.seconds = seconds
        self._armed = False

    def __enter__(self):
        def _on_alarm(signum, frame):
            raise CellTimeout()

        self._old = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, max(self.seconds, 1e-3))
        self._armed = True
        return self

    def __exit__(self, *exc):
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._old)
        return False


class _TimerDeadline:
    """Watchdog-timer deadline for threads that cannot receive ``SIGALRM``.

    The serving daemon runs cells on executor threads, where per-process
    signals are undeliverable.  A daemon :class:`threading.Timer` instead
    raises :class:`CellTimeout` *in the executing thread* through the
    C-API async-exception hook — the same next-bytecode-boundary
    granularity the signal gives, so ``timeout``/``fallback`` statuses come
    out identical to the signal path.  On a clean exit any still-pending
    async exception is cleared; the one unavoidable race (the timer firing
    inside ``__exit__`` itself) surfaces as a late ``CellTimeout``, which
    callers already treat as a timed-out cell.
    """

    def __init__(self, seconds: float):
        self.seconds = seconds
        self._timer: Optional[threading.Timer] = None
        self._lock = threading.Lock()
        self._done = False
        self._fired = False

    def _set_async_exc(self, exc) -> None:
        import ctypes

        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(self._tid), ctypes.py_object(exc) if exc else None
        )

    def _fire(self) -> None:
        with self._lock:
            if self._done:
                return
            self._fired = True
            self._set_async_exc(CellTimeout)

    def __enter__(self):
        self._tid = threading.get_ident()
        self._timer = threading.Timer(max(self.seconds, 1e-3), self._fire)
        self._timer.daemon = True
        self._timer.start()
        return self

    def __exit__(self, exc_type, *exc):
        with self._lock:
            self._done = True
            if self._timer is not None:
                self._timer.cancel()
            if self._fired and exc_type is not CellTimeout:
                # The exception was injected but has not been raised yet
                # (the block finished first): clear it before it detonates
                # in unrelated code.
                self._set_async_exc(None)
        return False


def _Deadline(seconds: Optional[float]):
    """The per-cell deadline, selected for the current thread.

    ``SIGALRM`` on the main thread (byte-identical to the historical CLI
    behaviour), the async-exception watchdog elsewhere, and a no-op when no
    deadline was requested or the platform has no usable mechanism.
    """
    if seconds is None:
        return contextlib.nullcontext()
    if hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread():
        return _SignalDeadline(seconds)
    return _TimerDeadline(seconds)


def _interruptible_sleep(seconds: float) -> None:
    """Sleep in short slices so either deadline can interrupt promptly.

    One long C-level ``time.sleep`` would pin the watchdog's injected
    async exception until the sleep returned on its own — the exception
    is only delivered at a bytecode boundary, and a blocked thread never
    reaches one.  Slicing gives both mechanisms a boundary every 50ms.
    """
    deadline = time.perf_counter() + seconds
    while True:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return
        time.sleep(min(remaining, 0.05))


def _simulate(result_like, machine, trips_list, seed, sim_cycles):
    from ..pipeline.overhead import pipeline_overhead
    from ..sim.layout import DataLayout
    from ..sim.perf import simulate_pipelined

    # Simulate the loop actually scheduled — spill rounds may have added
    # operations beyond the original body.
    loop = result_like.schedule.loop
    overhead = pipeline_overhead(result_like.schedule, result_like.allocation, machine)
    for trips in trips_list:
        layout = DataLayout(loop, trip_count=trips or loop.trip_count, seed=seed)
        report = simulate_pipelined(
            result_like.schedule, layout, machine, trips=trips, overhead=overhead
        )
        sim_cycles["default" if trips is None else str(trips)] = float(report.cycles)
    return overhead


def _run_scheduler(cell: Cell, loop, machine: MachineDescription) -> CellResult:
    """Schedule, allocate and simulate one cell (no deadline handling here)."""
    from ..core.minii import min_ii as compute_min_ii

    options = {k: v for k, v in cell.options.items() if not k.startswith("_test_")}
    out = CellResult(
        loop=cell.loop,
        scheduler=cell.scheduler,
        options_json=cell.options_json,
        n_ops=loop.n_ops,
        # Computed on the pristine loop, before any seeded fault below —
        # this is the reference the fuzz oracle's II >= MinII layer uses.
        min_ii=compute_min_ii(loop, machine),
    )
    if cell.analyze:
        # Certified refined lower bound, also on the pristine loop: the
        # certificates must describe the loop the oracle reasons about,
        # not a corrupted copy the scheduler happens to see.
        from ..analyze.bounds import compute_bounds

        bounds = compute_bounds(loop, machine)
        out.refined_bound = bounds.refined_bound
        out.bounds = bounds.to_dict()
    trips_list: List[Optional[int]] = [None, *cell.trips] if cell.simulate else []

    # Seeded fault injection (fuzz-oracle calibration): corrupt what the
    # scheduler sees, never what the oracle measures against.
    inject = cell.options.get("_test_inject")
    if inject:
        from ..fuzz.inject import corrupt_loop

        loop = corrupt_loop(loop, inject)

    if cell.scheduler == "baseline":
        from ..baseline.list_scheduler import list_schedule
        from ..sim.layout import DataLayout
        from ..sim.perf import simulate_sequential_body

        start = time.perf_counter()
        schedule = list_schedule(loop, machine)
        out.schedule_seconds = out.sched_wall_seconds = time.perf_counter() - start
        out.success = True
        out.producer = "baseline/list"
        for trips in trips_list:
            layout = DataLayout(loop, trip_count=trips or loop.trip_count, seed=cell.seed)
            report = simulate_sequential_body(schedule, layout, machine, trips=trips)
            out.sim_cycles["default" if trips is None else str(trips)] = float(report.cycles)
        return out

    sched_start = time.perf_counter()
    if cell.scheduler == "sgi":
        from ..core.driver import PipelinerOptions, pipeline_loop

        result = pipeline_loop(
            loop, machine, PipelinerOptions.from_dict(options), verify=cell.verify
        )
        out.schedule_seconds = result.stats.seconds
        out.order_name = result.order_name
        out.spill_rounds = result.spill_rounds
    elif cell.scheduler == "most":
        from ..most.scheduler import MostOptions, most_pipeline_loop

        result = most_pipeline_loop(
            loop, machine, MostOptions.from_dict(options), verify=cell.verify
        )
        out.schedule_seconds = result.stats.seconds
        out.fallback = result.fallback_used
        out.optimal = result.optimal
        if result.fallback_used and result.fallback_result is not None:
            # MOST never spills; any spilling happened inside its heuristic
            # fallback, whose PipelineResult carries the round count.
            out.spill_rounds = result.fallback_result.spill_rounds
    elif cell.scheduler == "portfolio":
        from ..portfolio.driver import PortfolioOptions, portfolio_pipeline_loop

        result = portfolio_pipeline_loop(
            loop, machine, PortfolioOptions.from_dict(options), verify=cell.verify
        )
        out.schedule_seconds = result.stats.seconds
        out.fallback = result.fallback_used
        out.optimal = result.optimal
        out.backend_seconds = result.stats.backend_seconds()
        out.backend_probes = [probe.to_dict() for probe in result.probes]
        if result.fallback_used and result.fallback_result is not None:
            # Like MOST, the portfolio itself never spills; only its
            # heuristic fallback can, and it reports the round count.
            out.spill_rounds = result.fallback_result.spill_rounds
    elif cell.scheduler == "rau":
        from ..rau.scheduler import RauOptions, rau_pipeline_loop

        known = {"budget_ratio", "ii_cap_factor", "max_spill_rounds"}
        result = rau_pipeline_loop(
            loop,
            machine,
            RauOptions(**{k: v for k, v in options.items() if k in known}),
            verify=cell.verify,
        )
        out.schedule_seconds = result.stats.seconds
        # RauResult reports the spilled value set, not rounds; any spill
        # still means the scheduled loop is not the pristine one.
        out.spill_rounds = 1 if result.spilled else 0
    else:  # pragma: no cover - Cell.__post_init__ rejects unknown names
        raise ValueError(f"unknown scheduler {cell.scheduler!r}")
    out.sched_wall_seconds = time.perf_counter() - sched_start

    if inject:
        from ..fuzz.inject import corrupt_result

        corrupt_result(result, inject)

    out.success = result.success
    if result.success:
        out.ii = result.ii
        out.producer = result.schedule.producer
        out.n_stages = result.schedule.n_stages
        out.registers_used = result.allocation.registers_used
        if trips_list:
            overhead = _simulate(result, machine, trips_list, cell.seed, out.sim_cycles)
            out.overhead_cycles = overhead.total
        else:
            from ..pipeline.overhead import pipeline_overhead

            out.overhead_cycles = pipeline_overhead(
                result.schedule, result.allocation, machine
            ).total
    if cell.oracle:
        _apply_oracle(cell, result, machine, out)
    if cell.explain:
        from ..obs import get_recorder
        from ..obs.explain import explain_result

        rec = get_recorder()
        try:
            out.explanation = explain_result(
                result,
                cell.scheduler,
                machine,
                options,
                events=getattr(rec, "events", None),
                obs=getattr(rec, "counters", None),
            ).to_dict()
        except Exception:
            # Attribution is best-effort decoration; a replay crash must
            # not lose the measured result.
            out.explanation = {"error": traceback.format_exc()}
    return out


def _apply_oracle(cell: Cell, result, machine, out: CellResult) -> None:
    """The fuzz oracle's dynamic layers; decorates ``out``, never raises.

    Independently re-verifies the produced artifacts (schedule, allocation,
    emitted listing) against the *pristine* machine description, then runs
    the pipelined functional simulation against the sequential reference
    semantics.  Runs on whatever the scheduler produced — including results
    corrupted by a seeded ``_test_inject`` fault — which is exactly what
    makes those faults detectable.
    """
    if not getattr(result, "success", False) or result.schedule is None:
        return
    try:
        from ..pipeline.emit import emit_pipelined_code
        from ..verify import verify_result

        emitted = None
        if result.allocation is not None and result.allocation.success:
            emitted = emit_pipelined_code(result.schedule, result.allocation)
        report = verify_result(result, emitted=emitted, machine=machine)
        out.verify_errors = [f"{d.rule}: {d.message}" for d in report.errors]
    except Exception:
        out.verify_errors = [f"verifier crashed: {traceback.format_exc()}"]
    if result.allocation is None or not result.allocation.success:
        return
    try:
        from ..sim.functional import run_pipelined, run_sequential
        from ..sim.layout import DataLayout

        trips = min(64, max(12, 3 * result.schedule.n_stages))
        layout = DataLayout(result.loop, trip_count=trips, seed=cell.seed)
        seq = run_sequential(result.loop, layout, trips)
        pipe = run_pipelined(result.schedule, result.allocation, layout, trips)
        out.funcsim_ok = seq.matches(pipe)
        if not out.funcsim_ok:
            mem_diff = {
                addr
                for addr in set(seq.memory) | set(pipe.memory)
                if seq.memory.get(addr) != pipe.memory.get(addr)
            }
            out_diff = {
                name
                for name in set(seq.live_out) | set(pipe.live_out)
                if seq.live_out.get(name) != pipe.live_out.get(name)
            }
            out.funcsim_detail = (
                f"{len(mem_diff)} memory word(s) and {len(out_diff)} live-out "
                f"value(s) differ from the sequential reference at trips={trips}"
                + (f" (live_out: {sorted(out_diff)[:4]})" if out_diff else "")
            )
    except Exception:
        out.funcsim_ok = False
        out.funcsim_detail = f"functional sim crashed: {traceback.format_exc()}"


def _fallback_result(cell: Cell, loop, machine, elapsed: float) -> CellResult:
    """Heuristic rescue of a timed-out cell, with honest accounting."""
    fallback_cell = Cell.make(
        cell.loop, "sgi", {"enable_membank": False},
        trips=cell.trips, seed=cell.seed, simulate=cell.simulate, verify=False,
    )
    try:
        out = _run_scheduler(fallback_cell, loop, machine)
    except Exception:
        out = CellResult(loop=cell.loop, scheduler=cell.scheduler, n_ops=loop.n_ops)
        out.error = f"timeout after {elapsed:.1f}s; fallback failed:\n{traceback.format_exc()}"
        out.timeout = True
        return out
    out.scheduler = cell.scheduler
    out.options_json = cell.options_json
    out.timeout = True
    out.fallback = True
    out.schedule_seconds += elapsed
    return out


def _trace_spool_path(cell: Cell) -> str:
    """Per-cell JSONL spool path inside ``cell.trace_dir``.

    The name encodes loop, scheduler and an options digest (so option
    sweeps over one loop do not collide), sanitised to filesystem-safe
    characters; the pid keeps concurrent workers apart.
    """
    import hashlib

    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in cell.loop)
    digest = hashlib.sha256(cell.options_json.encode()).hexdigest()[:8]
    return os.path.join(
        cell.trace_dir, f"{safe}__{cell.scheduler}__{digest}__{os.getpid()}.jsonl"
    )


def execute_cell(spec: Dict, in_worker: bool = True) -> Dict:
    """Run one cell (worker entry point).  Returns a payload dict.

    With ``cell.trace`` set, the whole cell runs under a live
    :class:`~repro.obs.TraceRecorder`: the scheduler's folded counters land
    in ``CellResult.obs``, and when ``cell.trace_dir`` names a directory
    the raw events are spooled there as one JSONL file per cell (merged
    across workers later by the bench layer).

    ``_test_*`` option keys are harness hooks: ``_test_sleep`` delays the
    scheduler (deterministic timeout tests), ``_test_crash_once`` names a
    marker file and kills the worker process the first time it runs
    (worker-death retry tests; ignored inline).
    """
    cell = Cell.from_dict(spec)
    machine = r8000()
    options = cell.options

    crash_marker = options.get("_test_crash_once")
    if crash_marker and in_worker:
        if not os.path.exists(crash_marker):
            with open(crash_marker, "w") as handle:
                handle.write("crashed once\n")
            os._exit(3)

    start = time.perf_counter()
    try:
        loop = resolve_loop(cell.loop, machine)
    except Exception:
        out = CellResult(loop=cell.loop, scheduler=cell.scheduler)
        out.error = traceback.format_exc()
        out.wall_seconds = time.perf_counter() - start
        return out.to_dict()

    rec = TraceRecorder(process_name=f"repro worker {os.getpid()}") if cell.trace else None
    try:
        with _Deadline(cell.timeout):
            if options.get("_test_sleep"):
                _interruptible_sleep(float(options["_test_sleep"]))
            if rec is not None:
                with recording(rec), rec.span(
                    "cell", loop=cell.loop, scheduler=cell.scheduler
                ):
                    out = _run_scheduler(cell, loop, machine)
            else:
                out = _run_scheduler(cell, loop, machine)
    except CellTimeout:
        out = _fallback_result(cell, loop, machine, elapsed=time.perf_counter() - start)
    except Exception:
        out = CellResult(
            loop=cell.loop, scheduler=cell.scheduler,
            options_json=cell.options_json, n_ops=loop.n_ops,
        )
        out.error = traceback.format_exc()
    out.wall_seconds = time.perf_counter() - start
    if rec is not None:
        out.obs = dict(rec.counters)
        if cell.trace_dir:
            try:
                os.makedirs(cell.trace_dir, exist_ok=True)
                path = _trace_spool_path(cell)
                write_jsonl(rec, path)
                out.trace_file = path
            except OSError:
                # An unwritable trace directory must not fail the cell:
                # the folded counters still travel in the result.
                out.trace_file = None
    return out.to_dict()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
ProgressFn = Callable[[int, int, Cell, CellResult], None]


class ExecEngine:
    """Runs cells in parallel with caching, deadlines and one retry.

    ``jobs=1`` executes inline (same worker code, no subprocess); ``jobs>1``
    uses a process pool.  ``default_timeout`` applies to cells that do not
    carry their own.  ``progress`` is called after every finished cell.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ScheduleCache] = None,
        default_timeout: Optional[float] = None,
        retries: int = 1,
        progress: Optional[ProgressFn] = None,
        machine: Optional[MachineDescription] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.default_timeout = default_timeout
        self.retries = retries
        self.progress = progress
        self.machine = machine if machine is not None else r8000()
        self._machine_fp = fingerprint_machine(self.machine)
        self._loop_fps: Dict[str, str] = {}

    # -- keys ----------------------------------------------------------
    def _effective(self, cell: Cell) -> Cell:
        if cell.timeout is None and self.default_timeout is not None:
            cell = Cell.from_dict({**cell.to_dict(), "timeout": self.default_timeout})
        return cell

    def key_of(self, cell: Cell) -> str:
        """Content address of a cell (resolves the loop to fingerprint it)."""
        if cell.loop not in self._loop_fps:
            self._loop_fps[cell.loop] = fingerprint_loop(
                resolve_loop(cell.loop, self.machine)
            )
        return cell_key(
            self._loop_fps[cell.loop],
            self._machine_fp,
            cell.scheduler,
            cell.options_json,
            cell.trips,
            cell.seed,
            cell.simulate,
            cell.timeout,
            cell.trace,
            cell.explain,
            cell.oracle,
            cell.analyze,
        )

    def forget_loop_fingerprints(self) -> None:
        """Drop the per-engine loop-fingerprint memo.

        Long fuzzing sessions stream thousands of one-shot ``fuzz:`` keys
        through one engine; dropping the memo between batches keeps its
        footprint bounded (corpus keys are simply re-fingerprinted).
        """
        self._loop_fps.clear()

    # -- running -------------------------------------------------------
    def run(self, cells: Sequence[Cell]) -> Dict[Cell, CellResult]:
        """Execute every distinct cell; returns results keyed by cell.

        Cached results are returned without scheduling anything; the rest
        fan out over the pool.  The result map is keyed by the cells as
        given (before the engine's default timeout is applied).
        """
        ordered: List[Cell] = list(dict.fromkeys(cells))
        results: Dict[Cell, CellResult] = {}
        pending: List[Cell] = []
        keys: Dict[Cell, str] = {}
        total = len(ordered)
        done = 0

        for cell in ordered:
            effective = self._effective(cell)
            try:
                key = self.key_of(effective)
            except Exception:
                # The loop key does not resolve: an error result, not a crash
                # (and nothing worth caching).
                result = CellResult(
                    loop=cell.loop,
                    scheduler=cell.scheduler,
                    options_json=cell.options_json,
                    error=traceback.format_exc(),
                )
                results[cell] = result
                done += 1
                if self.progress:
                    self.progress(done, total, cell, result)
                continue
            keys[cell] = key
            payload = self.cache.get(key) if self.cache is not None else None
            if payload is not None:
                result = CellResult.from_dict(payload)
                result.cache_hit = True
                result.cache_key = key
                results[cell] = result
                done += 1
                if self.progress:
                    self.progress(done, total, cell, result)
            else:
                pending.append(cell)

        if pending:
            if self.jobs == 1:
                fresh = self._run_inline(pending, keys, done, total, results)
            else:
                fresh = self._run_pool(pending, keys, done, total, results)
            results.update(fresh)
        return results

    def _finish(self, cell: Cell, result: CellResult, key: str) -> CellResult:
        result.cache_key = key
        if self.cache is not None and result.error is None:
            payload = result.to_dict()
            payload["cache_hit"] = False
            self.cache.put(key, payload)
        return result

    def _run_inline(self, pending, keys, done, total, results):
        fresh: Dict[Cell, CellResult] = {}
        for cell in pending:
            spec = self._effective(cell).to_dict()
            result = CellResult.from_dict(execute_cell(spec, in_worker=False))
            fresh[cell] = self._finish(cell, result, keys[cell])
            done += 1
            if self.progress:
                self.progress(done, total, cell, fresh[cell])
        return fresh

    def _run_pool(self, pending, keys, done, total, results):
        fresh: Dict[Cell, CellResult] = {}
        attempts: Dict[Cell, int] = {cell: 0 for cell in pending}
        remaining = list(pending)
        while remaining:
            executor = ProcessPoolExecutor(max_workers=self.jobs)
            futures = {}
            for cell in remaining:
                attempts[cell] += 1
                futures[executor.submit(execute_cell, self._effective(cell).to_dict())] = cell
            crashed: List[Cell] = []
            try:
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in finished:
                        cell = futures[future]
                        try:
                            result = CellResult.from_dict(future.result())
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:  # pickling issues etc.
                            result = CellResult(
                                loop=cell.loop,
                                scheduler=cell.scheduler,
                                options_json=cell.options_json,
                                error=f"worker error: {exc!r}",
                            )
                        result.attempts = attempts[cell]
                        fresh[cell] = self._finish(cell, result, keys[cell])
                        done += 1
                        if self.progress:
                            self.progress(done, total, cell, fresh[cell])
            except BrokenProcessPool:
                # A worker died mid-flight.  Everything without a result is
                # suspect; re-run cells that still have retries left.
                for future, cell in futures.items():
                    if cell in fresh:
                        continue
                    if attempts[cell] <= self.retries:
                        crashed.append(cell)
                    else:
                        result = CellResult(
                            loop=cell.loop,
                            scheduler=cell.scheduler,
                            options_json=cell.options_json,
                            error="worker process died repeatedly",
                            attempts=attempts[cell],
                        )
                        fresh[cell] = self._finish(cell, result, keys[cell])
                        done += 1
                        if self.progress:
                            self.progress(done, total, cell, fresh[cell])
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
            remaining = crashed
        return fresh
