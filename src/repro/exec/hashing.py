"""Stable content hashing for the experiment cache.

A cached schedule is only reusable when *everything* that determined it is
unchanged: the loop IR, the machine description, the pipeliner options and
the scheduling code itself.  Each of those gets a canonical JSON rendering
hashed with SHA-256; the cell key combines them, so any drift — an edited
kernel, a latency tweak, a new pruning rule — silently invalidates exactly
the affected entries and nothing else.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from functools import lru_cache
from typing import Any

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription

# Subpackages whose source participates in scheduling or simulation; editing
# any of them invalidates every cache entry.  ``exec`` itself, ``eval`` and
# ``verify`` are deliberately excluded: they orchestrate and check results
# but never change them.
_RESULT_BEARING = (
    "ir",
    "machine",
    "core",
    "most",
    "rau",
    "ilp",
    "portfolio",
    "regalloc",
    "sim",
    "pipeline",
    "baseline",
    "workloads",
    "analyze",
)


def _sha256(payload: Any) -> str:
    """SHA-256 of a canonical (sorted-keys, no-whitespace) JSON rendering."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_loop(loop: Loop) -> str:
    """Content hash of a loop body: operations, dependences, metadata."""
    ops = [
        {
            "i": op.index,
            "opcode": op.opcode,
            "class": op.opclass.value,
            "dests": list(op.dests),
            "srcs": list(op.srcs),
            "mem": None
            if op.mem is None
            else [op.mem.base, op.mem.offset, op.mem.stride, op.mem.width, op.mem.is_store],
            "tags": sorted(op.tags),
        }
        for op in loop.ops
    ]
    arcs = sorted(
        (a.src, a.dst, a.latency, a.omega, a.kind.value, a.value) for a in loop.ddg.arcs
    )
    return _sha256(
        {
            "name": loop.name,
            "trip_count": loop.trip_count,
            "weight": loop.weight,
            "live_in": sorted(loop.live_in),
            "live_out": sorted(loop.live_out),
            "known_parity": dict(sorted(loop.known_parity.items())),
            "ops": ops,
            "arcs": arcs,
        }
    )


def fingerprint_machine(machine: MachineDescription) -> str:
    """Content hash of a machine description."""
    tables = {
        opclass.value: sorted(
            (use.offset, use.resource, use.count) for use in table.uses
        )
        for opclass, table in machine.tables.items()
    }
    return _sha256(
        {
            "name": machine.name,
            "availability": dict(sorted(machine.availability.items())),
            "latencies": {c.value: l for c, l in sorted(machine.latencies.items(), key=lambda kv: kv[0].value)},
            "tables": tables,
            "store_to_load": machine.store_to_load_latency,
            "mem_serialize": machine.mem_serialize_latency,
            "fp_regs": machine.fp_regs,
            "int_regs": machine.int_regs,
            "banks": machine.memory_banks,
            "bellows": machine.bellows_depth,
        }
    )


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of every result-bearing source file in the ``repro`` package.

    Computed once per process; any edit to scheduling, allocation or
    simulation code changes the version and therefore every cache key.
    """
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for sub in _RESULT_BEARING:
        for path in sorted((root / sub).glob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


def cell_key(
    loop_fingerprint: str,
    machine_fingerprint: str,
    scheduler: str,
    options_json: str,
    trips: tuple,
    seed: int,
    simulate: bool,
    timeout: float | None,
    trace: bool = False,
    explain: bool = False,
    oracle: bool = False,
    analyze: bool = False,
) -> str:
    """The content address of one experiment cell.

    ``trace`` is part of the key because traced results carry payload
    (folded ``obs`` counters) that untraced results lack; where the trace
    is *written* is not, so moving the output directory reuses the cache.
    ``explain`` participates for the same reason: explained results carry
    a binding-constraint attribution payload.  So does ``oracle``: oracle
    results carry independent-verification and functional-sim verdicts.
    ``analyze`` likewise: analyzed results carry the certified refined II
    lower bound and its certificate payload.
    """
    return _sha256(
        {
            "loop": loop_fingerprint,
            "machine": machine_fingerprint,
            "scheduler": scheduler,
            "options": options_json,
            "trips": list(trips),
            "seed": seed,
            "simulate": simulate,
            "timeout": timeout,
            "trace": trace,
            "explain": explain,
            "oracle": oracle,
            "analyze": analyze,
            "code": code_version(),
        }
    )
