"""Content-addressed on-disk cache of cell results.

Entries are keyed by the SHA-256 of everything that determined the result
(:mod:`repro.exec.hashing`), sharded two levels deep so directories stay
small, and written atomically (temp file + rename) so a killed run never
leaves a truncated entry behind.  Corrupt or unreadable entries read as
misses and are overwritten on the next store — the cache is always safe to
delete wholesale.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Default location, relative to the working directory; CI points
#: ``actions/cache`` at the same path.
DEFAULT_CACHE_DIR = ".exec-cache"

_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # unreadable/corrupt entries encountered

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
        }


@dataclass
class ScheduleCache:
    """A directory of ``<k[:2]>/<k[2:4]>/<k>.json`` cell-result payloads."""

    directory: pathlib.Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, directory=DEFAULT_CACHE_DIR):
        self.directory = pathlib.Path(directory)
        self.stats = CacheStats()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / key[2:4] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("format") != _FORMAT_VERSION or "payload" not in entry:
                raise ValueError("unrecognised cache entry format")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, OSError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": _FORMAT_VERSION, "key": key, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def entry_count(self) -> int:
        """Number of entries on disk (walks the directory)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*/*.json"))

    # -- disk-tier maintenance (``python -m repro cache``) -------------
    def iter_entries(self):
        """Yield ``(path, size_bytes, mtime)`` for every entry on disk.

        Entries that vanish mid-walk (a concurrent pruner or a cache wipe)
        are silently skipped — every writer is atomic-rename based, so a
        path either stats completely or not at all.
        """
        if not self.directory.is_dir():
            return
        for path in self.directory.glob("*/*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            yield path, stat.st_size, stat.st_mtime

    def disk_stats(self) -> Dict[str, Any]:
        """Size accounting of the on-disk tier: entries, bytes, shard fill."""
        entries = 0
        total_bytes = 0
        shards = set()
        for path, size, _ in self.iter_entries():
            entries += 1
            total_bytes += size
            shards.add((path.parent.parent.name, path.parent.name))
        return {
            "dir": str(self.directory),
            "entries": entries,
            "bytes": total_bytes,
            "shards_used": len(shards),
            # Two hex characters per level: 65536 possible leaf shards.
            "shard_fill": len(shards) / 65536.0,
        }

    def prune(self, max_bytes: int, max_tmp_age: float = 3600.0) -> Dict[str, Any]:
        """Size-bounded GC: delete oldest entries until ``<= max_bytes``.

        Safe under concurrent writers: entries are only ever created by
        atomic rename, so unlinking can never observe a half-written file,
        and a concurrent ``put`` of a pruned key simply recreates it.
        Stale ``*.tmp`` files (an interrupted writer) older than
        ``max_tmp_age`` seconds are collected too.  Empty shard
        directories are removed best-effort.  Returns the GC accounting.
        """
        import time as _time

        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        removed = freed = 0
        tmp_removed = 0
        now = _time.time()
        if self.directory.is_dir():
            for tmp in self.directory.glob("*/*/*.tmp"):
                try:
                    if now - tmp.stat().st_mtime > max_tmp_age:
                        tmp.unlink()
                        tmp_removed += 1
                except OSError:
                    continue
        entries = sorted(self.iter_entries(), key=lambda e: (e[2], str(e[0])))
        total = sum(size for _, size, _ in entries)
        for path, size, _ in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue  # a concurrent pruner got there first
            total -= size
            removed += 1
            freed += size
        # Sweep now-empty shard directories (two levels), best-effort: a
        # concurrent writer re-creating the shard just wins the race.
        if removed and self.directory.is_dir():
            for level2 in self.directory.glob("*/*"):
                try:
                    level2.rmdir()
                except OSError:
                    pass
            for level1 in self.directory.glob("*"):
                try:
                    level1.rmdir()
                except OSError:
                    pass
        return {
            "removed": removed,
            "freed_bytes": freed,
            "tmp_removed": tmp_removed,
            "kept": len(entries) - removed,
            "kept_bytes": total,
        }
