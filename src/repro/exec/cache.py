"""Content-addressed on-disk cache of cell results.

Entries are keyed by the SHA-256 of everything that determined the result
(:mod:`repro.exec.hashing`), sharded two levels deep so directories stay
small, and written atomically (temp file + rename) so a killed run never
leaves a truncated entry behind.  Corrupt or unreadable entries read as
misses and are overwritten on the next store — the cache is always safe to
delete wholesale.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Default location, relative to the working directory; CI points
#: ``actions/cache`` at the same path.
DEFAULT_CACHE_DIR = ".exec-cache"

_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # unreadable/corrupt entries encountered

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
        }


@dataclass
class ScheduleCache:
    """A directory of ``<k[:2]>/<k[2:4]>/<k>.json`` cell-result payloads."""

    directory: pathlib.Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, directory=DEFAULT_CACHE_DIR):
        self.directory = pathlib.Path(directory)
        self.stats = CacheStats()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / key[2:4] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("format") != _FORMAT_VERSION or "payload" not in entry:
                raise ValueError("unrecognised cache entry format")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, OSError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": _FORMAT_VERSION, "key": key, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def entry_count(self) -> int:
        """Number of entries on disk (walks the directory)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*/*.json"))
