"""Benchmark emission: timed cell sweeps written as machine-readable JSON.

``run_pipeline_bench`` is the CI workhorse: every (loop × scheduler) cell of
the standard corpora, fanned out by :class:`~repro.exec.runner.ExecEngine`,
timed, and written to ``benchmarks/output/BENCH_pipeline.json`` together
with solver-budget accounting (timeouts, fallbacks, native-vs-rescued
schedule time).  ``run_sweep`` is the same machinery pointed at an
arbitrary corpus/scheduler subset; ``write_bench_json`` is reused by the
experiment CLI to emit per-figure ``BENCH_<figure>.json`` files.  All of it
exists so the ROADMAP's perf trajectory is data, not anecdotes.
"""

from __future__ import annotations

import datetime
import json
import math
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.history import append_history
from ..obs.provenance import provenance
from .cache import DEFAULT_CACHE_DIR, ScheduleCache
from .cells import Cell, CellResult, corpus_loop_keys
from .hashing import code_version
from .runner import ExecEngine, ProgressFn

DEFAULT_OUTPUT_DIR = pathlib.Path("benchmarks") / "output"

#: Fields every per-cell record in a BENCH json carries (the acceptance
#: contract of the bench layer).
BENCH_CELL_FIELDS = (
    "loop",
    "scheduler",
    "ii",
    "schedule_seconds",
    "timeout",
    "fallback",
    "sim_cycles",
)


@dataclass
class BenchOptions:
    """Knobs of a bench run; ``quick`` is the CI smoke configuration."""

    quick: bool = False
    corpora: Tuple[str, ...] = ("livermore", "spec92", "recbound")
    schedulers: Tuple[str, ...] = ("sgi", "most", "rau", "portfolio")
    jobs: int = 1
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR
    use_cache: bool = True
    # The ILP budget is primarily the *node* limit: node-limited solves
    # stop at identical search states regardless of machine load, so
    # ``--jobs 1`` and ``--jobs N`` emit identical schedules.  The wall
    # budget is a generous backstop, and the cell timeout the hard one.
    most_time_limit: float = 20.0
    most_engine: str = "scipy"
    most_max_ops: int = 61
    most_max_nodes: int = 4000
    # The backend portfolio runs in cross-check mode on the grid: every
    # registered backend answers every (loop, II) probe, so the emitted
    # BENCH json carries the full agreement trail (and per-backend solve
    # seconds) rather than just the race winner.  Like MOST, node limits
    # are the deterministic budget; the wall clock is a backstop.
    portfolio_time_limit: float = 20.0
    portfolio_backends: str = "cp,ilp"
    portfolio_max_nodes: int = 20_000
    portfolio_cross_check: bool = True
    cell_timeout: Optional[float] = 120.0
    seed: int = 0
    output_dir: pathlib.Path = field(default_factory=lambda: DEFAULT_OUTPUT_DIR)
    # Search-effort tracing (repro.obs): every cell runs under a live
    # recorder, folded counters land in the BENCH json, and per-cell JSONL
    # spools under ``trace_dir`` are merged into one Chrome trace.
    trace: bool = False
    trace_dir: Optional[str] = None
    # II-gap attribution (repro.obs.explain): every cell's achieved II gets
    # a binding-constraint explanation embedded in its BENCH record, and
    # the summary counts cells per binding class.
    explain: bool = False
    # Certified refined II lower bounds (repro.analyze): every cell records
    # its loop's refined bound and certificate payload, so a BENCH json is
    # auditable against the certified floor after the fact.
    analyze: bool = True
    # Run-history store (repro.obs.history): when set, the finished BENCH
    # payload is also filed as a timestamped record under this root so the
    # trend layer (``repro trend``) has a longitudinal series.  None keeps
    # programmatic/test runs out of any shared history; the CLI defaults
    # this to ``benchmarks/history``.
    history_dir: Optional[pathlib.Path] = None

    def __post_init__(self) -> None:
        if self.quick:
            # The smoke lane: the small corpora, a tighter solver budget.
            # recbound stays in — it is six loops, and it is the corpus
            # where the certified static bounds actually prune the search.
            self.corpora = ("livermore", "recbound")
            self.most_max_nodes = min(self.most_max_nodes, 2000)
            self.cell_timeout = 60.0
        self.output_dir = pathlib.Path(self.output_dir)

    def scheduler_options(self, scheduler: str) -> Dict:
        if scheduler == "most":
            return {
                "time_limit": self.most_time_limit,
                "engine": self.most_engine,
                "max_ops": self.most_max_ops,
                "max_nodes": self.most_max_nodes,
            }
        if scheduler == "portfolio":
            return {
                "time_limit": self.portfolio_time_limit,
                "backends": self.portfolio_backends,
                "max_ops": self.most_max_ops,
                "max_nodes": self.portfolio_max_nodes,
                "cross_check": self.portfolio_cross_check,
            }
        return {}

    def engine(self, progress: Optional[ProgressFn] = None) -> ExecEngine:
        cache = (
            ScheduleCache(self.cache_dir)
            if self.use_cache and self.cache_dir is not None
            else None
        )
        return ExecEngine(
            jobs=self.jobs,
            cache=cache,
            default_timeout=self.cell_timeout,
            progress=progress,
        )


def bench_cells(options: BenchOptions) -> List[Cell]:
    """The (loop × scheduler) cell grid of a bench run."""
    return [
        Cell.make(
            key,
            scheduler,
            options.scheduler_options(scheduler),
            seed=options.seed,
            verify=False,
            trace=options.trace,
            trace_dir=options.trace_dir,
            explain=options.explain,
            analyze=options.analyze,
        )
        for corpus in options.corpora
        for key in corpus_loop_keys(corpus)
        for scheduler in options.schedulers
    ]


def print_progress(done: int, total: int, cell: Cell, result: CellResult) -> None:
    """Default progress stream: one line per finished cell."""
    flags = "".join(
        tag
        for tag, on in (
            (" cached", result.cache_hit),
            (" TIMEOUT", result.timeout),
            (" fallback", result.fallback),
            (" ERROR", result.error is not None),
        )
        if on
    )
    ii = "-" if result.ii is None else str(result.ii)
    print(
        f"[{done}/{total}] {cell.loop} × {cell.scheduler}"
        f" II={ii} {result.schedule_seconds:.3f}s{flags}",
        flush=True,
    )


def _geomean(values: Sequence[float]) -> Optional[float]:
    positive = [v for v in values if v > 0]
    if not positive:
        return None
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def summarise(results: Sequence[CellResult]) -> Dict:
    """Aggregate accounting over one run's cell results."""
    by_sched: Dict[str, Dict] = {}
    for res in results:
        agg = by_sched.setdefault(
            res.scheduler,
            {
                "cells": 0,
                "schedule_seconds": 0.0,
                "wall_seconds": 0.0,
                "timeouts": 0,
                "fallbacks": 0,
                "errors": 0,
                "failures": 0,
                "at_min_ii": 0,
            },
        )
        agg["cells"] += 1
        agg["schedule_seconds"] += res.schedule_seconds
        agg["wall_seconds"] += res.wall_seconds
        agg["timeouts"] += int(res.timeout)
        agg["fallbacks"] += int(res.fallback)
        agg["errors"] += int(res.error is not None)
        agg["failures"] += int(not res.success)
        agg["at_min_ii"] += int(res.ii is not None and res.ii == res.min_ii)
        for name, value in (res.obs or {}).items():
            obs = agg.setdefault("obs", {})
            obs[name] = obs.get(name, 0) + value
        binding = (res.explanation or {}).get("binding")
        if binding:
            bindings = agg.setdefault("bindings", {})
            bindings[binding] = bindings.get(binding, 0) + 1
        # Portfolio cells: per-backend solve-time columns plus the
        # cross-backend agreement verdict over the recorded probe trail.
        for name, seconds in (res.backend_seconds or {}).items():
            backends = agg.setdefault("backend_seconds", {})
            backends[name] = backends.get(name, 0.0) + seconds
        if res.backend_probes:
            from ..portfolio.answer import probe_disagreements

            agg["probes"] = agg.get("probes", 0) + len(res.backend_probes)
            agg["disagreements"] = agg.get("disagreements", 0) + len(
                probe_disagreements(res.backend_probes)
            )

    totals: Dict = {
        "cells": len(results),
        "timeouts": sum(a["timeouts"] for a in by_sched.values()),
        "fallbacks": sum(a["fallbacks"] for a in by_sched.values()),
        "errors": sum(a["errors"] for a in by_sched.values()),
        "cache_hits": sum(1 for r in results if r.cache_hit),
        "by_scheduler": by_sched,
    }
    obs_totals: Dict[str, float] = {}
    for agg in by_sched.values():
        for name, value in agg.get("obs", {}).items():
            obs_totals[name] = obs_totals.get(name, 0) + value
    if obs_totals:
        totals["obs"] = obs_totals
    binding_totals: Dict[str, int] = {}
    for agg in by_sched.values():
        for name, count in agg.get("bindings", {}).items():
            binding_totals[name] = binding_totals.get(name, 0) + count
    if binding_totals:
        totals["bindings"] = binding_totals
    backend_totals: Dict[str, float] = {}
    for agg in by_sched.values():
        for name, seconds in agg.get("backend_seconds", {}).items():
            backend_totals[name] = backend_totals.get(name, 0.0) + seconds
    if backend_totals:
        totals["backend_seconds"] = backend_totals
        totals["probes"] = sum(a.get("probes", 0) for a in by_sched.values())
        totals["disagreements"] = sum(
            a.get("disagreements", 0) for a in by_sched.values()
        )

    # The paper's §4.7 headline: ILP schedule time over heuristic schedule
    # time, total and restricted to loops the ILP solved natively.
    if "most" in by_sched and "sgi" in by_sched:
        sgi = {r.loop: r for r in results if r.scheduler == "sgi"}
        ratios, native_ratios = [], []
        for res in results:
            if res.scheduler != "most" or res.loop not in sgi:
                continue
            heuristic = max(sgi[res.loop].schedule_seconds, 1e-4)
            ratios.append(res.schedule_seconds / heuristic)
            if not res.fallback and not res.timeout:
                native_ratios.append(res.schedule_seconds / heuristic)
        totals["ilp_vs_heuristic_time_geomean"] = _geomean(ratios)
        totals["ilp_vs_heuristic_time_geomean_native"] = _geomean(native_ratios)
    return totals


def build_report(
    name: str,
    options: BenchOptions,
    cells: Sequence[Cell],
    results: Dict[Cell, CellResult],
    wall_seconds: float,
    cache: Optional[ScheduleCache],
) -> Dict:
    ordered = [results[cell] for cell in cells]
    return {
        "name": name,
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "code_version": code_version(),
        "provenance": provenance(),
        "machine": "r8000",
        "quick": options.quick,
        "jobs": options.jobs,
        "corpora": list(options.corpora),
        "schedulers": list(options.schedulers),
        "cell_timeout": options.cell_timeout,
        "most_time_limit": options.most_time_limit,
        "wall_seconds": wall_seconds,
        "cache": None
        if cache is None
        else {"dir": str(cache.directory), **cache.stats.as_dict()},
        "totals": summarise(ordered),
        "cells": [res.to_dict() for res in ordered],
    }


def write_bench_json(payload: Dict, output_dir=DEFAULT_OUTPUT_DIR, name: Optional[str] = None) -> pathlib.Path:
    """Write one BENCH_<name>.json under ``output_dir``; returns the path."""
    output_dir = pathlib.Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"BENCH_{name or payload['name']}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def figure_report(name: str, results: Sequence[CellResult]) -> Dict:
    """A BENCH payload for one experiment figure's cell measurements."""
    return {
        "name": name,
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "code_version": code_version(),
        "provenance": provenance(),
        "machine": "r8000",
        "totals": summarise(results),
        "cells": [res.to_dict() for res in results],
    }


def profile_schedulers(
    options: Optional[BenchOptions] = None, top: int = 20
) -> Dict[str, str]:
    """cProfile every scheduler's bench cells inline; return top-``top`` tables.

    The raw-speed campaign's evidence flag (``repro bench --profile``):
    each scheduler's full cell grid runs in-process under one
    :mod:`cProfile` session — no workers, no cache, so the profile covers
    exactly the scheduling work — and the cumulative-time top table is
    returned (and printed by the CLI) per scheduler.  Future hot-path
    claims are one flag away from evidence.
    """
    import cProfile
    import io
    import pstats

    from .runner import execute_cell

    options = options or BenchOptions()
    tables: Dict[str, str] = {}
    for scheduler in options.schedulers:
        specs = [
            cell.to_dict()
            for cell in bench_cells(options)
            if cell.scheduler == scheduler
        ]
        profiler = cProfile.Profile()
        profiler.enable()
        for spec in specs:
            execute_cell(spec, in_worker=False)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        tables[scheduler] = buffer.getvalue()
    return tables


def merge_trace_dir(trace_dir) -> Optional[pathlib.Path]:
    """Merge per-cell JSONL spools under ``trace_dir`` into one Chrome trace.

    Workers each wrote their own ``*.jsonl`` file; the merged, ts-sorted
    event array lands next to them as ``trace.json``, loadable directly in
    ``chrome://tracing`` or Perfetto.  Returns the path, or ``None`` when
    there was nothing to merge.
    """
    from ..obs import merge_jsonl, write_chrome_trace

    trace_dir = pathlib.Path(trace_dir)
    spools = sorted(trace_dir.glob("*.jsonl"))
    if not spools:
        return None
    return write_chrome_trace(merge_jsonl(spools), trace_dir / "trace.json")


def run_pipeline_bench(
    options: Optional[BenchOptions] = None,
    progress: Optional[ProgressFn] = print_progress,
) -> Tuple[Dict, pathlib.Path]:
    """The standard bench: corpora × schedulers, emitted as BENCH_pipeline.json."""
    options = options or BenchOptions()
    engine = options.engine(progress)
    cells = bench_cells(options)
    start = time.perf_counter()
    results = engine.run(cells)
    report = build_report(
        "pipeline", options, cells, results, time.perf_counter() - start, engine.cache
    )
    if options.trace and options.trace_dir:
        merged = merge_trace_dir(options.trace_dir)
        report["trace"] = None if merged is None else str(merged)
    append_history(report, history_dir=options.history_dir)
    return report, write_bench_json(report, options.output_dir)


def run_sweep(
    corpus: str,
    options: Optional[BenchOptions] = None,
    progress: Optional[ProgressFn] = print_progress,
) -> Tuple[Dict, pathlib.Path]:
    """Bench one corpus with the configured scheduler subset."""
    options = options or BenchOptions()
    options.corpora = (corpus,)
    engine = options.engine(progress)
    cells = bench_cells(options)
    start = time.perf_counter()
    results = engine.run(cells)
    name = f"sweep_{corpus}"
    report = build_report(
        name, options, cells, results, time.perf_counter() - start, engine.cache
    )
    if options.trace and options.trace_dir:
        merged = merge_trace_dir(options.trace_dir)
        report["trace"] = None if merged is None else str(merged)
    append_history(report, history_dir=options.history_dir)
    return report, write_bench_json(report, options.output_dir)
