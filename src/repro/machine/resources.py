"""Machine resource modelling: reservation tables and resource pools.

Scheduling constraint (2) of the paper — resource availability — is modelled
with classic reservation tables.  Each operation class maps to a list of
``(cycle_offset, resource, count)`` triples; a fully pipelined operation
uses resources only at offset 0, an unpipelined one (e.g. FP divide) holds a
resource for several consecutive cycles and therefore conflicts with its
own class across iterations, which is what makes such operations hard to
modulo-schedule and why the priority heuristics move them to the head of
the list (Section 2.7).

Two interchangeable modulo-reservation-table implementations live here:

* :class:`PackedModuloReservationTable` (the default) interns resource
  names to dense integers once per availability map, pre-lowers each
  :class:`ReservationTable` into ``(slot_offset, resource_id, count)``
  arrays per II, and tracks occupancy in flat integer arrays plus one
  "slot full" bitmask per resource.  The bitmasks let the schedulers test
  a whole II's worth of candidate slots with a handful of big-int
  operations (:meth:`~PackedModuloReservationTable.blocked_mask`).
* :class:`DictModuloReservationTable` is the original
  ``List[Dict[str, int]]`` probing implementation, retained for the
  differential tests and selectable process-wide with
  ``REPRO_LEGACY_HOTPATHS=1``.

Both expose the same public ``fits/place/remove/used_at/copy`` API and the
same lowered fast-path API, so the schedulers never need to know which one
they got.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class ResourceUse:
    """Use of ``count`` units of ``resource`` at ``offset`` cycles after issue."""

    offset: int
    resource: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative resource offset {self.offset}")
        if self.count <= 0:
            raise ValueError(f"non-positive resource count {self.count}")


class ResourceIndex:
    """Dense integer interning of the resource names of one availability map.

    Indexes are interned per availability map (:func:`resource_index`), so
    every modulo reservation table built for the same machine shares one
    index — and with it the per-``(table, II)`` lowering cache.
    """

    __slots__ = ("names", "ids", "avail", "n")

    def __init__(self, availability: Dict[str, int]):
        self.names: Tuple[str, ...] = tuple(sorted(availability))
        self.ids: Dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self.avail: Tuple[int, ...] = tuple(availability[name] for name in self.names)
        self.n = len(self.names)


_INDEX_CACHE: Dict[Tuple[Tuple[str, int], ...], ResourceIndex] = {}


def resource_index(availability: Dict[str, int]) -> ResourceIndex:
    """The interned :class:`ResourceIndex` for ``availability``."""
    key = tuple(sorted(availability.items()))
    index = _INDEX_CACHE.get(key)
    if index is None:
        index = _INDEX_CACHE[key] = ResourceIndex(dict(key))
    return index


class LoweredTable:
    """One reservation table lowered against a resource index at a fixed II.

    ``entries`` are ``(slot_offset, resource_id, count)`` triples with all
    uses that alias the same modulo slot pre-combined (the self-conflict
    accumulation the dict implementation performs on every probe), sorted
    for determinism.  ``all_unit`` marks tables whose every combined entry
    needs exactly one unit — the precondition for the bitmask fast path.
    ``impossible`` marks tables that can fit at *no* cycle of this II
    (some combined entry exceeds the resource's total availability).

    For resources with exactly one available unit (FP divide, integer
    multiply: the long-held ones, so the entry-heavy tables), the per-slot
    counts are 0/1 — the "slot full" bitmask *is* the occupancy.
    ``unit_groups`` collapses each such resource's entries into one
    ``(resource_id, offset_mask)`` pair, so a 20-entry divide reservation
    probes/places/removes with one mask rotation; ``multi_entries`` keeps
    the remaining triples for the counting path.
    """

    __slots__ = ("entries", "all_unit", "impossible", "unit_groups", "multi_entries")

    def __init__(self, entries: Tuple[Tuple[int, int, int], ...], avail: Sequence[int]):
        self.entries = entries
        self.all_unit = all(cnt == 1 for _, _, cnt in entries)
        self.impossible = any(cnt > avail[rid] for _, rid, cnt in entries)
        unit: Dict[int, int] = {}
        rest: List[Tuple[int, int, int]] = []
        if self.impossible:
            rest = list(entries)
        else:
            for off, rid, cnt in entries:
                if avail[rid] == 1:  # cnt == 1, or the table were impossible
                    unit[rid] = unit.get(rid, 0) | (1 << off)
                else:
                    rest.append((off, rid, cnt))
        self.unit_groups: Tuple[Tuple[int, int], ...] = tuple(sorted(unit.items()))
        self.multi_entries: Tuple[Tuple[int, int, int], ...] = tuple(rest)


class ReservationTable:
    """The resource footprint of one operation class."""

    def __init__(self, uses: Iterable[ResourceUse]):
        self.uses: Tuple[ResourceUse, ...] = tuple(uses)
        # Lowered forms, keyed by (ResourceIndex, II).  Indexes are interned
        # per availability map, so this cache is shared by every scheduling
        # attempt against the same machine.
        self._lowered: Dict[Tuple[ResourceIndex, int], LoweredTable] = {}

    @property
    def span(self) -> int:
        """Number of cycles from issue over which resources are held."""
        return 1 + max((u.offset for u in self.uses), default=0)

    @property
    def is_fully_pipelined(self) -> bool:
        return all(u.offset == 0 for u in self.uses)

    def totals(self) -> Dict[str, int]:
        """Total units consumed per resource, across all offsets."""
        out: Dict[str, int] = {}
        for u in self.uses:
            out[u.resource] = out.get(u.resource, 0) + u.count
        return out

    def lowered(self, index: ResourceIndex, ii: int) -> LoweredTable:
        """This table as combined ``(slot_offset, resource_id, count)`` triples."""
        key = (index, ii)
        lt = self._lowered.get(key)
        if lt is None:
            combined: Dict[Tuple[int, int], int] = {}
            for u in self.uses:
                rid = index.ids.get(u.resource)
                if rid is None:
                    raise KeyError(f"machine has no resource {u.resource!r}")
                slot_key = (u.offset % ii, rid)
                combined[slot_key] = combined.get(slot_key, 0) + u.count
            entries = tuple(
                (off, rid, cnt) for (off, rid), cnt in sorted(combined.items())
            )
            lt = self._lowered[key] = LoweredTable(entries, index.avail)
        return lt

    @staticmethod
    def simple(*resources: str) -> "ReservationTable":
        """A fully pipelined table using one unit of each resource at issue."""
        return ReservationTable(ResourceUse(0, r) for r in resources)

    @staticmethod
    def blocking(setup: Sequence[str], held: str, hold_cycles: int) -> "ReservationTable":
        """An unpipelined table: issue resources at offset 0, then a resource
        held for ``hold_cycles`` consecutive cycles starting at issue."""
        uses = [ResourceUse(0, r) for r in setup]
        uses.extend(ResourceUse(off, held) for off in range(hold_cycles))
        return ReservationTable(uses)


class PackedModuloReservationTable:
    """Word-packed per-modulo-slot resource accounting for a candidate II.

    The table tracks, for every slot ``0 .. II-1`` and resource, how many
    units are in use.  Placing an operation at cycle ``t`` consumes each of
    its reservation uses at slot ``(t + offset) mod II``.

    Occupancy lives in one flat integer array (resource-major) plus one
    II-bit "slot is full" mask per resource, kept in sync on every
    place/remove.  The masks make :meth:`blocked_mask` — "at which modulo
    slots can this op *not* issue?" — a handful of rotate-and-OR big-int
    operations for the common all-unit-count tables.
    """

    def __init__(self, ii: int, availability: Dict[str, int]):
        if ii <= 0:
            raise ValueError(f"II must be positive, got {ii}")
        self.ii = ii
        self.availability = dict(availability)
        self.index = resource_index(self.availability)
        full = (1 << ii) - 1
        self._counts: List[int] = [0] * (self.index.n * ii)
        # Bit s of _full[rid] is set when slot s cannot take one more unit.
        self._full: List[int] = [0 if a > 0 else full for a in self.index.avail]

    # ------------------------------------------------------------------
    # Lowered fast-path API (used by the schedulers)
    # ------------------------------------------------------------------
    def lower(self, table: ReservationTable) -> LoweredTable:
        return table.lowered(self.index, self.ii)

    def fits_lowered(self, lt: LoweredTable, cycle: int) -> bool:
        ii = self.ii
        r = cycle % ii
        full = self._full
        wrap = (1 << ii) - 1
        for rid, m in lt.unit_groups:
            # Bit (off + r) mod II of the rotation is bit off of m.
            if full[rid] & (((m << r) | (m >> (ii - r))) & wrap):
                return False
        counts = self._counts
        avail = self.index.avail
        for off, rid, cnt in lt.multi_entries:
            s = r + off
            if s >= ii:
                s -= ii
            if counts[rid * ii + s] + cnt > avail[rid]:
                return False
        return True

    def place_lowered(self, lt: LoweredTable, cycle: int) -> None:
        """Consume the lowered uses at ``cycle`` without a fit check."""
        ii = self.ii
        r = cycle % ii
        counts = self._counts
        full = self._full
        avail = self.index.avail
        wrap = (1 << ii) - 1
        for rid, m in lt.unit_groups:
            full[rid] |= ((m << r) | (m >> (ii - r))) & wrap
        for off, rid, cnt in lt.multi_entries:
            s = r + off
            if s >= ii:
                s -= ii
            i = rid * ii + s
            c = counts[i] + cnt
            counts[i] = c
            if c >= avail[rid]:
                full[rid] |= 1 << s

    def remove_lowered(self, lt: LoweredTable, cycle: int) -> None:
        ii = self.ii
        r = cycle % ii
        counts = self._counts
        full = self._full
        avail = self.index.avail
        wrap = (1 << ii) - 1
        for rid, m in lt.unit_groups:
            rot = ((m << r) | (m >> (ii - r))) & wrap
            if full[rid] & rot != rot:
                raise ValueError(f"removing op at cycle {cycle} that was never placed")
            full[rid] &= ~rot
        for off, rid, cnt in lt.multi_entries:
            s = r + off
            if s >= ii:
                s -= ii
            i = rid * ii + s
            c = counts[i] - cnt
            if c < 0:
                raise ValueError(f"removing op at cycle {cycle} that was never placed")
            counts[i] = c
            if c < avail[rid]:
                full[rid] &= ~(1 << s)

    def blocked_mask(self, lt: LoweredTable) -> int:
        """Bitmask of modulo slots at which this op cannot issue *now*.

        Bit ``s`` is set when a cycle with ``cycle % II == s`` conflicts.
        For all-unit tables this is an OR of per-resource full masks
        rotated by the use offsets; tables with multi-unit entries fall
        back to probing each slot.  The mask is only valid until the next
        place/remove.
        """
        ii = self.ii
        if lt.impossible:
            return (1 << ii) - 1
        wrap = (1 << ii) - 1
        blocked = 0
        if lt.all_unit:
            full = self._full
            for off, rid, _ in lt.entries:
                m = full[rid]
                if m:
                    # Bit c of the rotation is bit (c + off) mod II of m.
                    blocked |= ((m >> off) | (m << (ii - off))) & wrap
            return blocked
        for s in range(ii):
            if not self.fits_lowered(lt, s):
                blocked |= 1 << s
        return blocked

    # ------------------------------------------------------------------
    # Public (checked) API
    # ------------------------------------------------------------------
    def fits(self, table: ReservationTable, cycle: int) -> bool:
        """Can an operation with this reservation table issue at ``cycle``?

        An operation longer than II can collide with *itself* across
        iterations (several of its uses land in the same modulo slot);
        lowering pre-combines such uses, which is the same accounting the
        dict implementation performs probe by probe.
        """
        return self.fits_lowered(self.lower(table), cycle)

    def place(self, table: ReservationTable, cycle: int) -> None:
        lt = self.lower(table)
        if not self.fits_lowered(lt, cycle):
            raise ValueError(f"resource conflict placing op at cycle {cycle}")
        self.place_lowered(lt, cycle)

    def remove(self, table: ReservationTable, cycle: int) -> None:
        self.remove_lowered(self.lower(table), cycle)

    def used_at(self, slot: int, resource: str) -> int:
        rid = self.index.ids.get(resource)
        if rid is None:
            return 0
        if self.index.avail[rid] == 1:
            # Single-unit resources are tracked by the full mask alone
            # (counts are not maintained for them on the lowered paths).
            return (self._full[rid] >> (slot % self.ii)) & 1
        return self._counts[rid * self.ii + slot % self.ii]

    def copy(self) -> "PackedModuloReservationTable":
        clone = PackedModuloReservationTable.__new__(PackedModuloReservationTable)
        clone.ii = self.ii
        clone.availability = dict(self.availability)
        clone.index = self.index
        clone._counts = self._counts[:]
        clone._full = self._full[:]
        return clone


class DictModuloReservationTable:
    """The original per-slot dict probing implementation.

    Retained as the differential-testing oracle for
    :class:`PackedModuloReservationTable` and selectable process-wide with
    ``REPRO_LEGACY_HOTPATHS=1``.  It also implements the lowered fast-path
    API (by ignoring the lowering) so the schedulers run unmodified
    against either implementation.
    """

    def __init__(self, ii: int, availability: Dict[str, int]):
        if ii <= 0:
            raise ValueError(f"II must be positive, got {ii}")
        self.ii = ii
        self.availability = dict(availability)
        self._used: List[Dict[str, int]] = [dict() for _ in range(ii)]

    def fits(self, table: ReservationTable, cycle: int) -> bool:
        """Can an operation with this reservation table issue at ``cycle``?

        An operation longer than II can collide with *itself* across
        iterations (several of its uses land in the same modulo slot), so
        pending usage is accumulated while checking.
        """
        pending: Dict[Tuple[int, str], int] = {}
        for u in table.uses:
            slot = (cycle + u.offset) % self.ii
            avail = self.availability.get(u.resource)
            if avail is None:
                raise KeyError(f"machine has no resource {u.resource!r}")
            key = (slot, u.resource)
            pending[key] = pending.get(key, 0) + u.count
            if self._used[slot].get(u.resource, 0) + pending[key] > avail:
                return False
        return True

    def place(self, table: ReservationTable, cycle: int) -> None:
        if not self.fits(table, cycle):
            raise ValueError(f"resource conflict placing op at cycle {cycle}")
        for u in table.uses:
            slot = (cycle + u.offset) % self.ii
            used = self._used[slot]
            used[u.resource] = used.get(u.resource, 0) + u.count

    def remove(self, table: ReservationTable, cycle: int) -> None:
        for u in table.uses:
            slot = (cycle + u.offset) % self.ii
            used = self._used[slot]
            remaining = used.get(u.resource, 0) - u.count
            if remaining < 0:
                raise ValueError(f"removing op at cycle {cycle} that was never placed")
            if remaining:
                used[u.resource] = remaining
            else:
                del used[u.resource]

    def used_at(self, slot: int, resource: str) -> int:
        return self._used[slot % self.ii].get(resource, 0)

    def copy(self) -> "DictModuloReservationTable":
        clone = DictModuloReservationTable(self.ii, self.availability)
        clone._used = [dict(d) for d in self._used]
        return clone

    # Lowered-API shims: `lower` returns the reservation table itself, so
    # the scheduler fast paths degrade to the probing implementation.
    def lower(self, table: ReservationTable) -> ReservationTable:
        return table

    def fits_lowered(self, table: ReservationTable, cycle: int) -> bool:
        return self.fits(table, cycle)

    def place_lowered(self, table: ReservationTable, cycle: int) -> None:
        for u in table.uses:
            slot = (cycle + u.offset) % self.ii
            used = self._used[slot]
            used[u.resource] = used.get(u.resource, 0) + u.count

    def remove_lowered(self, table: ReservationTable, cycle: int) -> None:
        self.remove(table, cycle)

    def blocked_mask(self, table: ReservationTable) -> int:
        blocked = 0
        for s in range(self.ii):
            if not self.fits(table, s):
                blocked |= 1 << s
        return blocked


#: ``REPRO_LEGACY_HOTPATHS=1`` reverts the whole process to the original
#: dict-probing tables (and per-II Floyd–Warshall distance tables, see
#: :mod:`repro.core.distances`) — the escape hatch the differential tests
#: exercise.  Outcome-identical by construction; only speed changes.
LEGACY_HOTPATHS = os.environ.get("REPRO_LEGACY_HOTPATHS", "") not in ("", "0")

if LEGACY_HOTPATHS:
    ModuloReservationTable = DictModuloReservationTable  # type: ignore[assignment,misc]
else:
    ModuloReservationTable = PackedModuloReservationTable  # type: ignore[assignment,misc]
