"""Machine resource modelling: reservation tables and resource pools.

Scheduling constraint (2) of the paper — resource availability — is modelled
with classic reservation tables.  Each operation class maps to a list of
``(cycle_offset, resource, count)`` triples; a fully pipelined operation
uses resources only at offset 0, an unpipelined one (e.g. FP divide) holds a
resource for several consecutive cycles and therefore conflicts with its
own class across iterations, which is what makes such operations hard to
modulo-schedule and why the priority heuristics move them to the head of
the list (Section 2.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class ResourceUse:
    """Use of ``count`` units of ``resource`` at ``offset`` cycles after issue."""

    offset: int
    resource: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative resource offset {self.offset}")
        if self.count <= 0:
            raise ValueError(f"non-positive resource count {self.count}")


class ReservationTable:
    """The resource footprint of one operation class."""

    def __init__(self, uses: Iterable[ResourceUse]):
        self.uses: Tuple[ResourceUse, ...] = tuple(uses)

    @property
    def span(self) -> int:
        """Number of cycles from issue over which resources are held."""
        return 1 + max((u.offset for u in self.uses), default=0)

    @property
    def is_fully_pipelined(self) -> bool:
        return all(u.offset == 0 for u in self.uses)

    def totals(self) -> Dict[str, int]:
        """Total units consumed per resource, across all offsets."""
        out: Dict[str, int] = {}
        for u in self.uses:
            out[u.resource] = out.get(u.resource, 0) + u.count
        return out

    @staticmethod
    def simple(*resources: str) -> "ReservationTable":
        """A fully pipelined table using one unit of each resource at issue."""
        return ReservationTable(ResourceUse(0, r) for r in resources)

    @staticmethod
    def blocking(setup: Sequence[str], held: str, hold_cycles: int) -> "ReservationTable":
        """An unpipelined table: issue resources at offset 0, then a resource
        held for ``hold_cycles`` consecutive cycles starting at issue."""
        uses = [ResourceUse(0, r) for r in setup]
        uses.extend(ResourceUse(off, held) for off in range(hold_cycles))
        return ReservationTable(uses)


class ModuloReservationTable:
    """Per-modulo-slot resource accounting for a candidate II.

    The table tracks, for every slot ``0 .. II-1`` and resource, how many
    units are in use.  Placing an operation at cycle ``t`` consumes each of
    its reservation uses at slot ``(t + offset) mod II``.
    """

    def __init__(self, ii: int, availability: Dict[str, int]):
        if ii <= 0:
            raise ValueError(f"II must be positive, got {ii}")
        self.ii = ii
        self.availability = dict(availability)
        self._used: List[Dict[str, int]] = [dict() for _ in range(ii)]

    def fits(self, table: ReservationTable, cycle: int) -> bool:
        """Can an operation with this reservation table issue at ``cycle``?

        An operation longer than II can collide with *itself* across
        iterations (several of its uses land in the same modulo slot), so
        pending usage is accumulated while checking.
        """
        pending: Dict[Tuple[int, str], int] = {}
        for u in table.uses:
            slot = (cycle + u.offset) % self.ii
            avail = self.availability.get(u.resource)
            if avail is None:
                raise KeyError(f"machine has no resource {u.resource!r}")
            key = (slot, u.resource)
            pending[key] = pending.get(key, 0) + u.count
            if self._used[slot].get(u.resource, 0) + pending[key] > avail:
                return False
        return True

    def place(self, table: ReservationTable, cycle: int) -> None:
        if not self.fits(table, cycle):
            raise ValueError(f"resource conflict placing op at cycle {cycle}")
        for u in table.uses:
            slot = (cycle + u.offset) % self.ii
            used = self._used[slot]
            used[u.resource] = used.get(u.resource, 0) + u.count

    def remove(self, table: ReservationTable, cycle: int) -> None:
        for u in table.uses:
            slot = (cycle + u.offset) % self.ii
            used = self._used[slot]
            remaining = used.get(u.resource, 0) - u.count
            if remaining < 0:
                raise ValueError(f"removing op at cycle {cycle} that was never placed")
            if remaining:
                used[u.resource] = remaining
            else:
                del used[u.resource]

    def used_at(self, slot: int, resource: str) -> int:
        return self._used[slot % self.ii].get(resource, 0)

    def copy(self) -> "ModuloReservationTable":
        clone = ModuloReservationTable(self.ii, self.availability)
        clone._used = [dict(d) for d in self._used]
        return clone
