"""Machine descriptions: the R8000 model and simple machines for tests.

The R8000 ("TFP", [Hsu94]) is modelled with the properties the paper's
results hinge on:

* 4-issue, in-order;
* two memory pipes — up to two FP loads/stores per cycle, serviced by a
  two-banked streaming cache with a one-element overflow queue (the
  "bellows", Section 2.9);
* two fully pipelined FP units executing add/multiply/madd;
* unpipelined FP divide and square root;
* two integer units.

Latencies are representative of the TFP pipeline (4-cycle FP arithmetic,
multi-cycle loads from the directly-addressed streaming cache); the
experiments consume only *relative* schedule quality, which these preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..ir.ddg import DepKind
from ..ir.operations import OpClass, Operation
from .resources import ReservationTable, ResourceUse


@dataclass
class MachineDescription:
    """A target machine: per-cycle resources, reservation tables, latencies."""

    name: str
    availability: Dict[str, int]
    tables: Dict[OpClass, ReservationTable]
    latencies: Dict[OpClass, int]
    # Latency applied to memory dependences by kind.
    store_to_load_latency: int = 1
    mem_serialize_latency: int = 1
    # Register files available to the allocator (total minus reserved).
    fp_regs: int = 30
    int_regs: int = 26
    # Banked memory system parameters (None = unbanked memory).
    memory_banks: Optional[int] = None
    bellows_depth: int = 0

    def table(self, opclass: OpClass) -> ReservationTable:
        try:
            return self.tables[opclass]
        except KeyError:
            raise KeyError(f"{self.name} has no reservation table for {opclass}") from None

    def latency(self, opclass: OpClass) -> int:
        try:
            return self.latencies[opclass]
        except KeyError:
            raise KeyError(f"{self.name} has no latency for {opclass}") from None

    def dep_latency(self, kind: DepKind, src: Operation) -> int:
        """Latency to attach to a dependence arc leaving ``src``."""
        if kind is DepKind.FLOW:
            return self.latency(src.opclass)
        if kind is DepKind.MEM:
            if src.opclass is OpClass.STORE:
                return self.store_to_load_latency
            return self.mem_serialize_latency
        # Anti/output register dependences: the consumer may issue in the
        # next cycle (modulo renaming removes most of these anyway).
        return self.mem_serialize_latency

    def is_fully_pipelined(self, opclass: OpClass) -> bool:
        return self.table(opclass).is_fully_pipelined

    @property
    def has_banked_memory(self) -> bool:
        return self.memory_banks is not None and self.memory_banks > 1


def r8000() -> MachineDescription:
    """The MIPS R8000 model used throughout the experiments."""
    simple = ReservationTable.simple
    fp = {"issue": 1, "fp": 1}
    mem = {"issue": 1, "mem": 1}
    ialu = {"issue": 1, "int": 1}

    def table(uses: Mapping[str, int]) -> ReservationTable:
        return ReservationTable(ResourceUse(0, r, c) for r, c in uses.items())

    tables = {
        OpClass.FADD: table(fp),
        OpClass.FMUL: table(fp),
        OpClass.FMADD: table(fp),
        OpClass.FCMP: table(fp),
        OpClass.FMOV: table(fp),
        # Divide/sqrt issue like an FP op but hold the (single) divide unit
        # for many cycles: the classic unpipelined hazard.
        OpClass.FDIV: ReservationTable(
            [ResourceUse(0, "issue"), ResourceUse(0, "fp")]
            + [ResourceUse(off, "fpdiv") for off in range(14)]
        ),
        OpClass.FSQRT: ReservationTable(
            [ResourceUse(0, "issue"), ResourceUse(0, "fp")]
            + [ResourceUse(off, "fpdiv") for off in range(20)]
        ),
        OpClass.LOAD: table(mem),
        OpClass.STORE: table(mem),
        OpClass.IALU: table(ialu),
        OpClass.IMUL: ReservationTable(
            [ResourceUse(0, "issue"), ResourceUse(0, "int")]
            + [ResourceUse(off, "imul") for off in range(4)]
        ),
        OpClass.BRANCH: table({"issue": 1, "int": 1}),
    }
    latencies = {
        OpClass.FADD: 4,
        OpClass.FMUL: 4,
        OpClass.FMADD: 4,
        OpClass.FCMP: 4,
        OpClass.FMOV: 1,
        OpClass.FDIV: 20,
        OpClass.FSQRT: 23,
        OpClass.LOAD: 6,
        OpClass.STORE: 1,
        OpClass.IALU: 1,
        OpClass.IMUL: 4,
        OpClass.BRANCH: 1,
    }
    return MachineDescription(
        name="r8000",
        availability={"issue": 4, "fp": 2, "mem": 2, "int": 2, "fpdiv": 1, "imul": 1},
        tables=tables,
        latencies=latencies,
        store_to_load_latency=1,
        fp_regs=30,  # 32 FP registers minus 2 reserved (zero + assembler temp)
        int_regs=26,  # 32 minus stack/global/zero/at/ra/temporaries
        memory_banks=2,
        bellows_depth=1,
    )


def single_issue() -> MachineDescription:
    """A one-op-per-cycle machine: handy for tests with predictable ResMII."""
    tables = {oc: ReservationTable.simple("issue") for oc in OpClass}
    latencies = {oc: 1 for oc in OpClass}
    latencies[OpClass.LOAD] = 2
    latencies[OpClass.FADD] = 2
    latencies[OpClass.FMUL] = 3
    latencies[OpClass.FMADD] = 3
    latencies[OpClass.FDIV] = 8
    return MachineDescription(
        name="single-issue",
        availability={"issue": 1},
        tables=tables,
        latencies=latencies,
        fp_regs=16,
        int_regs=16,
    )


def two_wide() -> MachineDescription:
    """A 2-issue machine with one memory pipe and one FP pipe."""
    tables = {
        OpClass.FADD: ReservationTable.simple("issue", "fp"),
        OpClass.FMUL: ReservationTable.simple("issue", "fp"),
        OpClass.FMADD: ReservationTable.simple("issue", "fp"),
        OpClass.FCMP: ReservationTable.simple("issue", "fp"),
        OpClass.FMOV: ReservationTable.simple("issue", "fp"),
        OpClass.FDIV: ReservationTable(
            [ResourceUse(0, "issue"), ResourceUse(0, "fp")]
            + [ResourceUse(off, "fpdiv") for off in range(8)]
        ),
        OpClass.FSQRT: ReservationTable(
            [ResourceUse(0, "issue"), ResourceUse(0, "fp")]
            + [ResourceUse(off, "fpdiv") for off in range(12)]
        ),
        OpClass.LOAD: ReservationTable.simple("issue", "mem"),
        OpClass.STORE: ReservationTable.simple("issue", "mem"),
        OpClass.IALU: ReservationTable.simple("issue", "int"),
        OpClass.IMUL: ReservationTable.simple("issue", "int"),
        OpClass.BRANCH: ReservationTable.simple("issue", "int"),
    }
    latencies = {
        OpClass.FADD: 3,
        OpClass.FMUL: 3,
        OpClass.FMADD: 3,
        OpClass.FCMP: 2,
        OpClass.FMOV: 1,
        OpClass.FDIV: 10,
        OpClass.FSQRT: 14,
        OpClass.LOAD: 3,
        OpClass.STORE: 1,
        OpClass.IALU: 1,
        OpClass.IMUL: 3,
        OpClass.BRANCH: 1,
    }
    return MachineDescription(
        name="two-wide",
        availability={"issue": 2, "fp": 1, "mem": 1, "int": 1, "fpdiv": 1},
        tables=tables,
        latencies=latencies,
        fp_regs=16,
        int_regs=16,
    )
