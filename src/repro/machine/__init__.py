"""Machine models: resources, reservation tables, target descriptions."""

from .descriptions import MachineDescription, r8000, single_issue, two_wide
from .resources import ModuloReservationTable, ReservationTable, ResourceUse

__all__ = [
    "MachineDescription",
    "ModuloReservationTable",
    "ReservationTable",
    "ResourceUse",
    "r8000",
    "single_issue",
    "two_wide",
]
