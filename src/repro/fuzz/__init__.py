"""repro.fuzz — coverage-guided differential fuzzing of the pipeliners.

The paper's claim is comparative: the heuristic (sgi), the optimal ILP
(most) and the iterative (rau) pipeliners must agree — on validity, on
semantics, and on II within proven bounds — over *arbitrary* loops, not
just the ~24 fixed Livermore/SPEC92 kernels.  This subsystem generates
that evidence continuously:

* :mod:`repro.workloads.mutate` (engine room, lives with the generators) —
  a declarative ``LoopSpec`` over loop IR with add/remove-op, dependence-
  distance, recurrence-/indirect-toggle and latency-rescale mutators plus
  structure-aware crossover;
* :mod:`repro.fuzz.oracle` — the layered differential oracle applied to
  every generated loop, per scheduler and across schedulers: no uncaught
  exception, independent :mod:`repro.verify` clean, ``II >= MinII``,
  functional-sim output equal to the sequential reference, and
  ``II_most <= II_sgi`` whenever MOST proves optimality;
* :mod:`repro.fuzz.engine` — the batch loop over the cached parallel
  :mod:`repro.exec` engine, using :func:`repro.obs.counter_signature`
  over search-effort counters (B&B nodes, prune reasons, simplex
  iterations) as the coverage signal that admits loops into the corpus;
* :mod:`repro.fuzz.minimize` — a ddmin-style reducer that shrinks any
  violating loop to a minimal reproducer;
* :mod:`repro.fuzz.corpus` — the checked-in ``tests/fuzz_corpus/``
  format that pytest replays forever after;
* :mod:`repro.fuzz.inject` — seeded faults (``--inject``) that calibrate
  the oracle: each is caught by a *different* layer, proving the layers
  are live.

Entry point: ``python -m repro fuzz --seconds N --jobs J [--seed S]``.
"""

from .corpus import CorpusEntry, load_entries, write_entry
from .engine import FuzzConfig, FuzzReport, run_fuzz
from .inject import INJECTIONS
from .minimize import minimize_spec
from .oracle import ORACLE_KINDS, Violation, check_results, evaluate_spec

__all__ = [
    "CorpusEntry",
    "FuzzConfig",
    "FuzzReport",
    "INJECTIONS",
    "ORACLE_KINDS",
    "Violation",
    "check_results",
    "evaluate_spec",
    "load_entries",
    "minimize_spec",
    "run_fuzz",
    "write_entry",
]
