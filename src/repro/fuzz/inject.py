"""Seeded fault injection: calibration targets for the fuzz oracle.

A differential oracle that never fires is indistinguishable from one that
cannot fire.  Each injection here plants one class of compiler bug into
the scheduling pipeline — applied inside the worker via the ``_test_inject``
option key, so it crosses process boundaries and lands in the cache key
automatically — and each is caught by a *different* oracle layer:

``latency``
    The scheduler sees every FLOW latency clamped to 1, so loops with a
    long-latency recurrence schedule below their true RecMII.  The
    schedule is internally consistent with the corrupted arcs (the
    independent verifier checks arc latencies as recorded in the loop, and
    writeback-at-issue semantics make the functional sim insensitive to
    latencies), so only the **II >= MinII layer** — which measures against
    the pristine loop — catches it.

``sched-shift``
    After scheduling, one dependent operation is moved onto its producer's
    issue cycle, violating a positive-latency same-iteration arc.  Caught
    by the **independent-verify layer** (SCHED001).

``reg-clobber``
    After allocation, two distinct FP registers are merged, so two live
    ranges overlap in one physical register.  Caught by the
    **independent-verify layer** (REG rules) and, independently, by the
    **functional-sim layer** (the clobbered value poisons results).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..ir.ddg import DDG, DepKind
from ..ir.loop import Loop

#: Injection name -> what it corrupts (and which oracle layer must notice).
INJECTIONS: Dict[str, str] = {
    "latency": "clamp every FLOW arc latency the scheduler sees to 1 "
               "(caught by the II >= MinII layer)",
    "sched-shift": "move one dependent op onto its producer's issue cycle "
                   "(caught by independent verify, SCHED001)",
    "reg-clobber": "merge two allocated FP registers into one "
                   "(caught by independent verify / functional sim)",
}


def corrupt_loop(loop: Loop, name: str) -> Loop:
    """Pre-scheduling corruption: what the scheduler (not the oracle) sees."""
    if name != "latency":
        return loop
    arcs = tuple(
        replace(arc, latency=1)
        if arc.kind is DepKind.FLOW and arc.latency > 1
        else arc
        for arc in loop.ddg.arcs
    )
    return Loop(
        name=loop.name,
        ops=loop.ops,
        ddg=DDG(loop.n_ops, arcs),
        live_in=loop.live_in,
        live_out=loop.live_out,
        trip_count=loop.trip_count,
        weight=loop.weight,
        known_parity=loop.known_parity,
    )


def corrupt_result(result, name: str) -> None:
    """Post-scheduling corruption of a successful result, in place."""
    if not getattr(result, "success", False) or result.schedule is None:
        return
    if name == "sched-shift":
        schedule = result.schedule
        for arc in result.loop.ddg.arcs:
            if (
                arc.kind is DepKind.FLOW
                and arc.omega == 0
                and arc.latency > 0
                and arc.src != arc.dst
            ):
                schedule.times[arc.dst] = schedule.times[arc.src]
                return
    elif name == "reg-clobber":
        allocation = result.allocation
        if allocation is None or not allocation.success:
            return
        assignment = allocation.fp_assignment
        colors = sorted(set(assignment.values()))
        if len(colors) < 2:
            return  # a single FP register cannot be merged with another
        # Merge every FP register into the lowest-numbered one: any two
        # simultaneously-live FP values now collide.
        for vname in assignment:
            assignment[vname] = colors[0]
