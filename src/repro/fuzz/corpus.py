"""The checked-in regression corpus of minimized reproducers.

Every finding the fuzzer minimizes lands here as one JSON file that
``tests/test_fuzz_corpus.py`` replays forever after.  Entries are named

    ``<kind>__<scheduler>[__<fault>]__<fingerprint12>.json``

where ``kind`` is the oracle layer that fired, ``scheduler`` the pipeliner
it fired against, ``fault`` the seeded injection (when one was armed), and
``fingerprint12`` the first 12 hex digits of the minimized loop's IR
content hash — so a reproducer's filename already says what broke, where,
and on which loop.

An entry's ``expect`` field records the verdict the replay must maintain:

* ``"violation"`` — the finding reproduces on current code (a live bug;
  replay fails until it is fixed, then the entry should flip to clean);
* ``"clean"`` — the loop passes on current code.  Entries produced under
  ``--inject`` are clean by construction; their value is the recorded
  ``injected_fault``, which the replay re-applies to prove the oracle
  layer that caught it originally still catches it (a regression test of
  the oracle itself).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..workloads.mutate import LoopSpec, normalize
from .oracle import Violation

ENTRY_FORMAT = 1
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz_corpus")


@dataclass
class CorpusEntry:
    """One minimized reproducer, as stored on disk."""

    name: str
    spec: LoopSpec
    expect: str  # "violation" | "clean"
    violation: Optional[Violation] = None
    injected_fault: Optional[str] = None
    schedulers: Tuple[str, ...] = ("sgi", "most", "rau")
    seed: int = 0
    fingerprint: str = ""
    n_ops: int = 0
    note: str = ""
    path: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": ENTRY_FORMAT,
            "name": self.name,
            "expect": self.expect,
            "violation": self.violation.to_dict() if self.violation else None,
            "injected_fault": self.injected_fault,
            "schedulers": list(self.schedulers),
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "n_ops": self.n_ops,
            "note": self.note,
            "spec": self.spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], path: str = "") -> "CorpusEntry":
        violation = data.get("violation")
        return cls(
            name=data["name"],
            spec=normalize(LoopSpec.from_dict(data["spec"])),
            expect=data.get("expect", "violation"),
            violation=Violation.from_dict(violation) if violation else None,
            injected_fault=data.get("injected_fault"),
            schedulers=tuple(data.get("schedulers", ("sgi", "most", "rau"))),
            seed=data.get("seed", 0),
            fingerprint=data.get("fingerprint", ""),
            n_ops=data.get("n_ops", 0),
            note=data.get("note", ""),
            path=path,
        )


def entry_name(violation: Violation, fingerprint: str,
               injected_fault: Optional[str] = None) -> str:
    parts = [violation.kind, violation.scheduler]
    if injected_fault:
        # Distinct seeded faults can minimize to the same loop; keep one
        # reproducer per (fault, layer) rather than letting them collide.
        parts.append(injected_fault.replace("-", ""))
    parts.append(fingerprint[:12])
    return "__".join(parts)


def write_entry(directory: str, entry: CorpusEntry) -> str:
    """Atomically write one entry; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{entry.name}.json")
    payload = json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    entry.path = path
    return path


def load_entries(directory: str = DEFAULT_CORPUS_DIR) -> List[CorpusEntry]:
    """Load every reproducer in a corpus directory (sorted by name)."""
    if not os.path.isdir(directory):
        return []
    entries: List[CorpusEntry] = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        path = os.path.join(directory, filename)
        with open(path) as handle:
            entries.append(CorpusEntry.from_dict(json.load(handle), path=path))
    return entries
