"""ddmin-style reduction of violating loops to minimal reproducers.

Classic delta debugging over the spec's operation list (chunked removal
with exponentially finer granularity, then single ops), followed by a
field-simplification pass (carried distances to 1, offsets to 0, strides
to 8, extra dependence arcs dropped, trip count shrunk).  The predicate is
"the same oracle violation — kind and scheduler — still reproduces", so a
minimized entry witnesses exactly the finding it was reduced from.

Spec removal is never allowed to *grow* the spec: ``remove_position``
normalizes, and normalization may re-synthesise minimal structure (a
store, a recurrence close), so every candidate is accepted only on a
strict op-count decrease.  That guard is what makes reduction terminate.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from ..workloads.mutate import LoopSpec, OpSpec, normalize, remove_position

Predicate = Callable[[LoopSpec], bool]


def _remove_many(spec: LoopSpec, positions: List[int]) -> Optional[LoopSpec]:
    """Remove several op positions (descending order keeps indices valid)."""
    out: Optional[LoopSpec] = spec
    for pos in sorted(positions, reverse=True):
        if out is None:
            return None
        out = remove_position(out, pos)
    return out


def _ddmin_ops(spec: LoopSpec, predicate: Predicate, budget: List[int]) -> LoopSpec:
    """Chunked removal over op positions, halving granularity to 1."""
    current = spec
    chunk = max(1, current.n_ops // 2)
    while chunk >= 1:
        pos = 0
        progressed = False
        while pos < current.n_ops and budget[0] > 0:
            positions = list(range(pos, min(pos + chunk, current.n_ops)))
            candidate = _remove_many(current, positions)
            if candidate is not None and candidate.n_ops < current.n_ops:
                budget[0] -= 1
                if predicate(candidate):
                    current = candidate
                    progressed = True
                    continue  # retry the same offset on the shrunk spec
            pos += chunk
        if chunk == 1 and not progressed:
            break
        chunk = chunk // 2 if not progressed else max(1, current.n_ops // 2)
        if budget[0] <= 0:
            break
    return current


def _simplify_fields(spec: LoopSpec, predicate: Predicate, budget: List[int]) -> LoopSpec:
    """Zero out everything that is not load-bearing for the violation."""
    current = spec

    def try_spec(candidate: LoopSpec) -> bool:
        nonlocal current
        candidate = normalize(candidate)
        if candidate == current or budget[0] <= 0:
            return False
        budget[0] -= 1
        if predicate(candidate):
            current = candidate
            return True
        return False

    # Drop extra dependence arcs one at a time (latest first).
    for idx in range(len(current.extra_deps) - 1, -1, -1):
        if idx < len(current.extra_deps):
            deps = current.extra_deps[:idx] + current.extra_deps[idx + 1:]
            try_spec(replace(current, extra_deps=deps))

    # Shrink the trip count.
    for trips in (8, 4):
        if current.trip_count > trips:
            try_spec(replace(current, trip_count=trips))

    # Simplify per-op fields.
    for pos in range(current.n_ops):
        if pos >= current.n_ops:
            break
        op = current.ops[pos]
        simplified: List[OpSpec] = []
        if op.kind == "close" and op.distance != 1:
            simplified.append(replace(op, distance=1))
        if op.kind in ("load", "store"):
            if op.offset not in (0, None):
                simplified.append(replace(op, offset=0))
            if op.stride != 8 or op.width != 8:
                simplified.append(replace(op, stride=8, width=8))
        for rec_slot, src in enumerate(op.srcs):
            if src[0] == "rec" and src[2] != 1:
                srcs = list(op.srcs)
                srcs[rec_slot] = ("rec", src[1], 1)
                simplified.append(replace(op, srcs=tuple(srcs)))
        for candidate_op in simplified:
            ops = current.ops[:pos] + (candidate_op,) + current.ops[pos + 1:]
            try_spec(replace(current, ops=ops))
            op = current.ops[pos]
    return current


def minimize_spec(
    spec: LoopSpec,
    predicate: Predicate,
    max_evaluations: int = 200,
) -> Tuple[LoopSpec, int]:
    """Shrink ``spec`` while ``predicate`` (violation reproduces) holds.

    Returns the minimized spec and the number of predicate evaluations
    spent.  ``predicate`` must hold for ``spec`` itself; if it does not
    (a flaky finding), the spec is returned unreduced.
    """
    spec = normalize(spec)
    if not predicate(spec):
        return spec, 1
    budget = [max_evaluations]
    current = _ddmin_ops(spec, predicate, budget)
    current = _simplify_fields(current, predicate, budget)
    # One more removal round: field simplification may have unlocked ops.
    current = _ddmin_ops(current, predicate, budget)
    return current, max_evaluations - budget[0] + 1
