"""The fuzzing loop: generate, execute, judge, minimize, record.

Each batch draws loops three ways — fresh :func:`random_spec` seeds,
mutations of corpus members, structure-aware crossover of two members —
fans every loop's (sgi, most, rau) cells out over the parallel
:mod:`repro.exec` engine, applies the layered oracle, and folds the
per-cell :mod:`repro.obs` counters into an AFL-style coverage signature:
a loop joins the in-memory corpus only when it exercised search behaviour
(a new prune reason, a new magnitude of B&B nodes or simplex iterations)
no earlier loop did.

Any oracle violation is minimized with :mod:`repro.fuzz.minimize` and
written into the checked-in ``tests/fuzz_corpus/`` (deduplicated by
(kind, scheduler, leading detail token) so one root cause yields one
reproducer).  Result caching is disabled: every generated loop is new, so
a cache could only cost I/O.

Everything is deterministic for a fixed ``(seed, batches-executed)``
prefix: one ``random.Random(seed)`` drives generation, and cell results
are jobs-count-independent by repro.exec's design.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exec.cells import Cell, CellResult
from ..exec.runner import ExecEngine
from ..obs import counter_signature
from ..workloads.generators import GeneratorConfig, random_spec
from ..workloads.mutate import LoopSpec, crossover, mutate, normalize
from .corpus import DEFAULT_CORPUS_DIR, CorpusEntry, entry_name, load_entries, write_entry
from .inject import INJECTIONS
from .minimize import minimize_spec
from .oracle import Violation, check_results, evaluate_spec, spec_cells

LogFn = Callable[[str], None]


@dataclass
class FuzzConfig:
    """Knobs of one fuzzing session."""

    seconds: float = 60.0
    jobs: int = 1
    seed: int = 0
    schedulers: Tuple[str, ...] = ("sgi", "most", "rau")
    max_ops: int = 16  # corpus-admission cap on generated loop size
    cell_timeout: float = 20.0
    inject: Optional[str] = None  # seeded fault name (see fuzz.inject)
    corpus_dir: str = DEFAULT_CORPUS_DIR
    write: bool = True  # write minimized reproducers into corpus_dir
    findings_dir: Optional[str] = None  # extra copy of new entries (CI artifacts)
    batch: int = 0  # loops per batch; 0 = auto (4 * jobs, floor 8)
    max_loops: Optional[int] = None  # stop early after N loops (tests)
    minimize_budget: int = 120  # predicate evaluations per finding

    def __post_init__(self) -> None:
        if self.inject is not None and self.inject not in INJECTIONS:
            raise ValueError(
                f"unknown injection {self.inject!r} "
                f"(known: {', '.join(sorted(INJECTIONS))})"
            )


@dataclass
class FuzzStats:
    loops: int = 0
    cells: int = 0
    batches: int = 0
    violations: int = 0
    timeouts: int = 0
    gave_up: int = 0
    coverage_keys: int = 0
    corpus_size: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class Finding:
    """One deduplicated oracle violation and what became of it."""

    violation: Violation
    spec: LoopSpec
    minimized: Optional[LoopSpec] = None
    evaluations: int = 0
    entry_path: Optional[str] = None
    reproduced: bool = True  # predicate held on the originating spec


@dataclass
class FuzzReport:
    stats: FuzzStats = field(default_factory=FuzzStats)
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No violations — or, under injection, every finding minimized."""
        return self.stats.violations == 0


def _seed_corpus(config: FuzzConfig, rng: random.Random) -> List[LoopSpec]:
    """Fresh random specs plus every checked-in reproducer's spec."""
    corpus: List[LoopSpec] = []
    for k in range(8):
        corpus.append(_fresh_spec(config, rng, tag=f"seed{k}"))
    for entry in load_entries(config.corpus_dir):
        spec = normalize(entry.spec)
        if spec.n_ops <= config.max_ops:
            corpus.append(spec)
    return corpus


def _fresh_spec(config: FuzzConfig, rng: random.Random, tag: str) -> LoopSpec:
    shape = GeneratorConfig(
        n_compute=rng.randrange(0, max(2, config.max_ops - 6)),
        n_streams=rng.randrange(0, 5),
        n_stores=rng.randrange(0, 3),
        n_recurrences=rng.randrange(0, 3),
        p_fmadd=rng.choice([0.0, 0.25, 0.5]),
        p_fdiv=rng.choice([0.0, 0.0, 0.1]),
        p_indirect=rng.choice([0.0, 0.0, 0.2]),
        trip_count=rng.choice([8, 16, 64]),
    )
    spec = random_spec(rng.randrange(1 << 30), shape, name=f"fz_{tag}", rng=rng)
    return normalize(spec)


def _next_spec(
    config: FuzzConfig, rng: random.Random, corpus: Sequence[LoopSpec], counter: int
) -> LoopSpec:
    roll = rng.random()
    tag = f"{counter:06d}"
    if roll < 0.35 or not corpus:
        return _fresh_spec(config, rng, tag)
    if roll < 0.8 or len(corpus) < 2:
        parent = rng.choice(list(corpus))
        spec = mutate(parent, rng, n=rng.randrange(1, 4))
    else:
        spec = crossover(rng.choice(list(corpus)), rng.choice(list(corpus)), rng)
    return normalize(
        LoopSpec(
            name=f"fz_{tag}",
            ops=spec.ops,
            n_recs=spec.n_recs,
            extra_deps=spec.extra_deps,
            trip_count=spec.trip_count,
            parity=spec.parity,
        )
    )


def _dedup_key(violation: Violation) -> Tuple[str, str, str]:
    head = violation.detail.split(" ", 1)[0].rstrip(":")[:16]
    if head.isdigit():
        head = ""  # a count (funcsim diff size) is not a root-cause marker
    return (violation.kind, violation.scheduler, head)


def _minimal_schedulers(violation: Violation) -> Tuple[str, ...]:
    """The smallest scheduler set that can re-witness a violation."""
    if violation.kind == "optimality":
        return ("sgi", "most")
    return (violation.scheduler,)


def _record_finding(
    config: FuzzConfig, spec: LoopSpec, violation: Violation, log: LogFn
) -> Finding:
    """Minimize one violation and (when reproducible) write its entry."""
    from ..exec.hashing import fingerprint_loop

    schedulers = _minimal_schedulers(violation)

    def reproduces(candidate: LoopSpec) -> bool:
        verdict = evaluate_spec(
            candidate, schedulers, seed=config.seed,
            timeout=config.cell_timeout, inject=config.inject,
        )
        return any(
            v.kind == violation.kind and v.scheduler == violation.scheduler
            for v in verdict.violations
        )

    minimized, evaluations = minimize_spec(
        spec, reproduces, max_evaluations=config.minimize_budget
    )
    finding = Finding(violation=violation, spec=spec, minimized=minimized,
                      evaluations=evaluations)
    if minimized is spec and not reproduces(spec):
        # Flaky (e.g. deadline-dependent): report it, but a corpus entry
        # that does not replay would only poison the regression suite.
        finding.reproduced = False
        log(f"  finding {violation.kind}/{violation.scheduler} did not "
            f"reproduce inline; not recorded")
        return finding

    fingerprint = fingerprint_loop(minimized.build())
    expect = "violation"
    if config.inject:
        # Under a seeded fault the loop itself should be healthy; make
        # sure, so the entry replays clean without the injection.
        clean = evaluate_spec(minimized, schedulers, seed=config.seed,
                              timeout=config.cell_timeout)
        expect = "clean" if not clean.violations else "violation"
    entry = CorpusEntry(
        name=entry_name(violation, fingerprint, config.inject),
        spec=minimized,
        expect=expect,
        violation=violation,
        injected_fault=config.inject,
        schedulers=schedulers,
        seed=config.seed,
        fingerprint=fingerprint,
        n_ops=minimized.n_ops,
        note=f"minimized from {spec.n_ops} ops in {evaluations} evaluations",
    )
    if config.write:
        finding.entry_path = write_entry(config.corpus_dir, entry)
        if config.findings_dir:
            write_entry(config.findings_dir, entry)
        log(f"  reproducer: {finding.entry_path} "
            f"({spec.n_ops} -> {minimized.n_ops} ops, {evaluations} evals)")
    return finding


def run_fuzz(config: FuzzConfig, log: Optional[LogFn] = None) -> FuzzReport:
    """Run one fuzzing session; returns stats and (minimized) findings."""
    log = log or (lambda message: None)
    rng = random.Random(config.seed)
    engine = ExecEngine(jobs=config.jobs, cache=None,
                        default_timeout=config.cell_timeout)
    report = FuzzReport()
    stats = report.stats
    corpus = _seed_corpus(config, rng)
    coverage: set = set()
    seen_findings: set = set()
    # Each engine.run() pays a fresh pool spin-up (workers re-import the
    # scheduling stack), so batches must be large enough to amortize it.
    batch_size = config.batch or max(24, 12 * config.jobs)
    deadline = time.monotonic() + config.seconds
    counter = 0

    if config.inject:
        log(f"injection armed: {config.inject} — {INJECTIONS[config.inject]}")

    while time.monotonic() < deadline:
        if config.max_loops is not None and stats.loops >= config.max_loops:
            break
        specs: List[LoopSpec] = []
        cells: List[Cell] = []
        by_loop_key: Dict[str, LoopSpec] = {}
        for _ in range(batch_size):
            if config.max_loops is not None and stats.loops + len(specs) >= config.max_loops:
                break
            spec = _next_spec(config, rng, corpus, counter)
            counter += 1
            spec_cell_list = spec_cells(
                spec, config.schedulers, seed=config.seed,
                timeout=config.cell_timeout, inject=config.inject, trace=True,
            )
            specs.append(spec)
            by_loop_key[spec_cell_list[0].loop] = spec
            cells.extend(spec_cell_list)
        if not specs:
            break

        results = engine.run(cells)
        stats.batches += 1
        grouped: Dict[str, Dict[str, CellResult]] = {}
        for cell, result in results.items():
            grouped.setdefault(cell.loop, {})[cell.scheduler] = result
            stats.cells += 1
            if result.timeout:
                stats.timeouts += 1
            elif not result.success and result.error is None:
                stats.gave_up += 1

        for loop_key, by_scheduler in grouped.items():
            spec = by_loop_key[loop_key]
            stats.loops += 1
            violations = check_results(by_scheduler)
            if violations:
                stats.violations += len(violations)
                for violation in violations:
                    key = _dedup_key(violation)
                    if key in seen_findings:
                        continue
                    seen_findings.add(key)
                    log(f"VIOLATION {violation.kind} [{violation.scheduler}] "
                        f"on {spec.name} ({spec.n_ops} ops): {violation.detail}")
                    report.findings.append(
                        _record_finding(config, spec, violation, log))
                continue
            # Coverage admission: did this loop exercise new search behaviour?
            signature = set()
            for scheduler, result in by_scheduler.items():
                signature |= counter_signature(result.obs, prefix=f"{scheduler}.")
            fresh_keys = signature - coverage
            if fresh_keys and spec.n_ops <= config.max_ops:
                coverage |= fresh_keys
                corpus.append(spec)

        engine.forget_loop_fingerprints()
        stats.coverage_keys = len(coverage)
        stats.corpus_size = len(corpus)
        elapsed = config.seconds - (deadline - time.monotonic())
        rate = stats.loops / elapsed if elapsed > 0 else 0.0
        log(f"[{elapsed:6.1f}s] loops={stats.loops} ({rate:.1f}/s) "
            f"cells={stats.cells} coverage={stats.coverage_keys} "
            f"corpus={stats.corpus_size} violations={stats.violations} "
            f"timeouts={stats.timeouts}")

    stats.wall_seconds = config.seconds - max(0.0, deadline - time.monotonic())
    return report
