"""The layered differential oracle over per-scheduler cell results.

Layers, in order of how directly they witness a miscompile:

``crash``       an uncaught exception inside the scheduling pipeline
                (timeouts that fell back are budget accounting, not bugs);
``verify``      the independent :mod:`repro.verify` checker found an ERROR
                in the schedule, allocation or emitted listing;
``funcsim``     the pipelined functional simulation disagreed with the
                sequential reference semantics;
``min_ii``      a scheduler claimed an II below the loop's MinII lower
                bound (computed on the pristine loop, pre-injection);
``bound``       a scheduler claimed, spill-free, an II below the *certified
                refined* lower bound (:mod:`repro.analyze`, computed and
                certificate-checked on the pristine loop) — strictly
                sharper than the ``min_ii`` layer wherever the refined
                bound exceeds MinII;
``optimality``  MOST *proved* optimality natively yet reported a larger II
                than the SGI heuristic achieved on the same loop — one of
                the two has to be wrong;
``agreement``   two portfolio backends answered the *same* (loop, II)
                formulation with contradicting definitive verdicts — one
                sat, one unsat — or a sat witness failed the independent
                formulation check.  Since every backend encodes one
                neutral :class:`repro.portfolio.formulation
                .ModuloFormulation`, a disagreement is a soundness bug in
                a backend, full stop.

The first three are per-cell; ``optimality`` is cross-scheduler and
``agreement`` cross-*backend* (within one portfolio cell), which is what
makes the harness differential.  A scheduler honestly giving up
(``success=False`` without an exception, e.g. MOST out of budget with
fallback disabled) violates nothing — and an ``unknown`` backend answer
agrees with everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..exec.cells import Cell, CellResult

ORACLE_KINDS = (
    "crash", "verify", "funcsim", "min_ii", "bound", "optimality", "agreement",
)

#: MOST options used for fuzz cells: native-or-nothing (no heuristic
#: fallback — a rescued result would just shadow the sgi cell), modest
#: budget so throughput stays high, B&B engine so ilp.* counters feed the
#: coverage signal.
FUZZ_MOST_OPTIONS = {
    "engine": "bnb",
    "fallback": False,
    "time_limit": 1.0,
    "max_nodes": 2000,
    "max_ops": 64,
}

#: Portfolio options for fuzz cells: cross-check on (every backend answers
#: every II probe — the agreement oracle's food), no fallback, modest
#: node-limited budget for throughput.  Backends are the always-available
#: pair; the CI z3 matrix widens it to "cp,ilp,smt".
FUZZ_PORTFOLIO_OPTIONS = {
    "backends": "cp,ilp",
    "cross_check": True,
    "fallback": False,
    "time_limit": 1.0,
    "max_nodes": 2000,
    "max_ops": 64,
}


@dataclass(frozen=True)
class Violation:
    """One oracle finding for one generated loop."""

    kind: str  # one of ORACLE_KINDS
    scheduler: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "scheduler": self.scheduler, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Mapping[str, str]) -> "Violation":
        return cls(kind=data["kind"], scheduler=data["scheduler"],
                   detail=data.get("detail", ""))


def check_results(results: Mapping[str, CellResult]) -> List[Violation]:
    """Apply every oracle layer to one loop's per-scheduler results."""
    violations: List[Violation] = []
    for scheduler, res in sorted(results.items()):
        if res.error is not None and not res.timeout:
            last = res.error.strip().splitlines()[-1] if res.error.strip() else "?"
            violations.append(Violation("crash", scheduler, last))
            continue
        if res.verify_errors:
            violations.append(Violation(
                "verify", scheduler,
                "; ".join(res.verify_errors[:3])
                + (f" (+{len(res.verify_errors) - 3} more)"
                   if len(res.verify_errors) > 3 else ""),
            ))
        if res.funcsim_ok is False:
            violations.append(Violation(
                "funcsim", scheduler, res.funcsim_detail or "output mismatch"))
        if res.success and res.ii is not None and res.ii < res.min_ii:
            violations.append(Violation(
                "min_ii", scheduler,
                f"achieved II={res.ii} below MinII={res.min_ii}"))
        if (
            res.success
            and res.ii is not None
            and res.refined_bound is not None
            and res.spill_rounds == 0
            and res.ii < res.refined_bound
        ):
            # Spill rounds rewrite the loop body, so the pristine loop's
            # certificates no longer bind; spill-free results must respect
            # the certified bound exactly.
            violations.append(Violation(
                "bound", scheduler,
                f"achieved II={res.ii} below certified refined bound="
                f"{res.refined_bound} (MinII={res.min_ii}) without spilling"))

        if res.backend_probes:
            from ..portfolio.answer import probe_disagreements

            for finding in probe_disagreements(res.backend_probes):
                violations.append(Violation("agreement", scheduler, finding))

    most = results.get("most")
    sgi = results.get("sgi")
    if (
        most is not None
        and sgi is not None
        and most.success
        and sgi.success
        and most.optimal
        and not most.fallback
        and most.ii is not None
        and sgi.ii is not None
        and most.ii > sgi.ii
    ):
        violations.append(Violation(
            "optimality", "most",
            f"proved-optimal II={most.ii} exceeds heuristic II={sgi.ii}"))
    return violations


# ----------------------------------------------------------------------
# Inline evaluation (minimizer + corpus replay)
# ----------------------------------------------------------------------
def spec_cells(
    spec,
    schedulers: Tuple[str, ...] = ("sgi", "most", "rau"),
    seed: int = 0,
    timeout: Optional[float] = 20.0,
    inject: Optional[str] = None,
    trace: bool = False,
) -> List[Cell]:
    """The exec cells that evaluate one LoopSpec under the oracle."""
    from ..workloads.mutate import spec_to_token

    key = f"fuzz:{spec_to_token(spec)}"
    cells = []
    for scheduler in schedulers:
        options: Dict[str, object] = {}
        if scheduler == "most":
            options.update(FUZZ_MOST_OPTIONS)
        if scheduler == "portfolio":
            options.update(FUZZ_PORTFOLIO_OPTIONS)
        if inject:
            options["_test_inject"] = inject
        cells.append(Cell.make(
            key,
            scheduler,
            options,
            seed=seed,
            timeout=timeout,
            simulate=False,
            verify=False,  # the oracle runs its own, independent pass
            trace=trace,
            oracle=True,
            analyze=True,  # certified refined bound for the ``bound`` layer
        ))
    return cells


@dataclass
class SpecVerdict:
    """Oracle outcome of evaluating one spec inline."""

    results: Dict[str, CellResult] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)


def evaluate_spec(
    spec,
    schedulers: Tuple[str, ...] = ("sgi", "most", "rau"),
    seed: int = 0,
    timeout: Optional[float] = 20.0,
    inject: Optional[str] = None,
) -> SpecVerdict:
    """Evaluate one spec in-process (no pool, no cache).

    This is the minimizer's predicate engine and the corpus replay tests'
    backend: the exact worker code path (:func:`repro.exec.runner.
    execute_cell`), run inline.
    """
    from ..exec.runner import execute_cell

    results: Dict[str, CellResult] = {}
    for cell in spec_cells(spec, schedulers, seed=seed, timeout=timeout, inject=inject):
        payload = execute_cell(cell.to_dict(), in_worker=False)
        results[cell.scheduler] = CellResult.from_dict(payload)
    return SpecVerdict(results=results, violations=check_results(results))
