"""Code generation for software pipelines: overhead model and emission."""

from .diagram import lifetime_view, reservation_view, stage_view
from .emit import PipelinedCode, emit_pipelined_code
from .overhead import CALLER_SAVED_FP, CALLER_SAVED_INT, OverheadReport, pipeline_overhead

__all__ = [
    "CALLER_SAVED_FP",
    "CALLER_SAVED_INT",
    "OverheadReport",
    "PipelinedCode",
    "emit_pipelined_code",
    "lifetime_view",
    "pipeline_overhead",
    "reservation_view",
    "stage_view",
]
