"""Emission of the final software-pipelined code as an assembly-like listing.

Modulo renaming replicates the kernel ``kmin`` times (Section 2.6): copy
``u`` of the kernel executes, for each operation, the instance belonging to
iteration ``n ≡ u - stage(op) (mod kmin)``, and register operands select
the physical register of the producing iteration's renamed copy.

The emitter exists for inspection and bookkeeping (fill/drain instruction
counts feed the overhead discussion of Section 4.6); the simulators execute
schedules directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.sched import Schedule
from ..ir.loop import Loop
from ..regalloc.coloring import AllocationResult


@dataclass
class PipelinedCode:
    """The emitted loop: textual bundles plus summary counts."""

    prologue: List[str]
    kernel: List[str]
    epilogue: List[str]
    kmin: int
    n_stages: int

    @property
    def fill_instructions(self) -> int:
        return sum(1 for line in self.prologue if not line.startswith("#"))

    @property
    def drain_instructions(self) -> int:
        return sum(1 for line in self.epilogue if not line.startswith("#"))

    def listing(self) -> str:
        parts = ["# prologue (pipeline fill)"]
        parts.extend(self.prologue)
        parts.append(f"# kernel (steady state, unrolled x{self.kmin})")
        parts.extend(self.kernel)
        parts.append("# epilogue (pipeline drain)")
        parts.extend(self.epilogue)
        return "\n".join(parts)


def _register_name(colors: Dict[str, Tuple[str, int]], key: str) -> str:
    cls, color = colors[key]
    prefix = "$f" if cls == "fp" else "$r"
    return f"{prefix}{color}"


def _operand(
    loop: Loop,
    colors: Dict[str, Tuple[str, int]],
    defs: Dict[str, int],
    value: str,
    iteration: int,
    kmin: int,
) -> str:
    if value not in defs:
        return _register_name(colors, f"{value}@in")
    return _register_name(colors, f"{value}@{iteration % kmin}")


def _format_instance(
    loop: Loop,
    colors: Dict[str, Tuple[str, int]],
    defs: Dict[str, int],
    omegas: Dict[int, List[int]],
    op_index: int,
    iteration: int,
    kmin: int,
) -> str:
    op = loop.ops[op_index]
    srcs = [
        _operand(loop, colors, defs, src, iteration - omegas[op_index][pos], kmin)
        for pos, src in enumerate(op.srcs)
    ]
    dest = (
        _operand(loop, colors, defs, op.dest, iteration, kmin) + " <- "
        if op.dests
        else ""
    )
    mem = ""
    if op.mem is not None:
        off = "?" if op.mem.offset is None else str(op.mem.offset)
        mem = f" [{op.mem.base}+{off}+i*{op.mem.stride}]"
    body = f"{op.opcode} {dest}{', '.join(srcs)}".rstrip(" ,")
    return f"    {body}{mem}  ; op{op_index} iter{{i{iteration:+d}}}"


def emit_pipelined_code(schedule: Schedule, allocation: AllocationResult) -> PipelinedCode:
    """Emit prologue, unrolled kernel, and epilogue for a schedule."""
    loop = schedule.loop
    ii = schedule.ii
    kmin = allocation.kmin
    stages = schedule.n_stages
    defs = loop.defs_of()
    from ..sim.functional import _use_omegas

    omegas = _use_omegas(loop)
    colors: Dict[str, Tuple[str, int]] = {}
    for name, color in allocation.fp_assignment.items():
        colors[name] = ("fp", color)
    for name, color in allocation.int_assignment.items():
        colors[name] = ("int", color)

    def bundle(instances: List[Tuple[int, int]], cycle_label: str) -> List[str]:
        lines = [f"  {cycle_label}:"]
        for op_index, iteration in sorted(instances):
            lines.append(
                _format_instance(loop, colors, defs, omegas, op_index, iteration, kmin)
            )
        return lines

    # Prologue: cycles before the steady state.  The steady state begins
    # once iteration (stages-1) starts, i.e. at time (stages-1)*II.
    prologue: List[str] = []
    steady_start = (stages - 1) * ii
    events: Dict[int, List[Tuple[int, int]]] = {}
    for op in loop.ops:
        # Enough iterations to cover the fill plus one full unrolled kernel.
        for n in range(stages + kmin):
            events.setdefault(schedule.time(op.index) + n * ii, []).append((op.index, n))
    for cycle in range(steady_start):
        instances = events.get(cycle, [])
        if instances:
            prologue.extend(bundle(instances, f"fill+{cycle}"))

    # Kernel: kmin*II cycles of the steady state, expressed with iteration
    # offsets relative to the oldest in-flight iteration.
    kernel: List[str] = []
    for u in range(kmin):
        for slot in range(ii):
            cycle = steady_start + u * ii + slot
            instances = events.get(cycle, [])
            shown = [
                (op_index, n)
                for op_index, n in instances
            ]
            if shown:
                kernel.extend(bundle(shown, f"kernel[{u}]+{slot}"))

    # Epilogue: drain — the final (stages-1) iterations' leftover stages.
    epilogue: List[str] = []
    drain_events: Dict[int, List[Tuple[int, int]]] = {}
    total = stages - 1  # iterations still in flight when issue stops
    for op in loop.ops:
        for n in range(total):
            t = schedule.time(op.index) + n * ii
            if t >= steady_start:
                drain_events.setdefault(t - steady_start, []).append((op.index, n))
    for cycle in sorted(drain_events):
        epilogue.extend(bundle(drain_events[cycle], f"drain+{cycle}"))

    return PipelinedCode(
        prologue=prologue,
        kernel=kernel,
        epilogue=epilogue,
        kmin=kmin,
        n_stages=stages,
    )
