"""ASCII diagrams of modulo schedules: reservation tables and stage maps.

Debugging and teaching aids: the *reservation view* shows what each
resource does in every steady-state cycle (the modulo reservation table
the scheduler filled in); the *stage view* shows where each operation
falls in (slot, stage) space — the geometry modulo renaming and the
fill/drain code are built from.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.sched import Schedule


def reservation_view(schedule: Schedule) -> str:
    """Render the steady-state resource usage, one row per modulo slot."""
    machine = schedule.machine
    loop = schedule.loop
    resources = sorted(machine.availability)
    # usage[slot][resource] -> list of op labels
    usage: Dict[int, Dict[str, List[str]]] = {
        slot: {r: [] for r in resources} for slot in range(schedule.ii)
    }
    for op in loop.ops:
        table = machine.table(op.opclass)
        for use in table.uses:
            slot = (schedule.time(op.index) + use.offset) % schedule.ii
            label = f"{op.opcode}#{op.index}" if use.offset == 0 else f"({op.opcode}#{op.index})"
            usage[slot][use.resource].append(label)

    widths = {}
    for r in resources:
        cells = [", ".join(usage[s][r]) for s in range(schedule.ii)]
        widths[r] = max([len(r)] + [len(c) for c in cells])
    lines = [
        f"steady state of {loop.name!r} at II={schedule.ii} "
        f"(parentheses: held cycles of unpipelined ops)"
    ]
    header = "slot  " + "  ".join(r.ljust(widths[r]) for r in resources)
    lines.append(header)
    lines.append("-" * len(header))
    for slot in range(schedule.ii):
        row = [f"{slot:4d}"]
        for r in resources:
            row.append(", ".join(usage[slot][r]).ljust(widths[r]))
        lines.append("  ".join(row))
    return "\n".join(lines)


def stage_view(schedule: Schedule) -> str:
    """Render operations on the (slot, stage) grid."""
    lines = [
        f"pipestage map of {schedule.loop.name!r}: "
        f"{schedule.n_stages} overlapped iterations"
    ]
    cells: Dict[int, Dict[int, List[str]]] = {}
    for op in schedule.loop.ops:
        slot = schedule.slot(op.index)
        stage = schedule.stage(op.index)
        cells.setdefault(slot, {}).setdefault(stage, []).append(
            f"{op.opcode}#{op.index}"
        )
    col_width = 2 + max(
        (len(", ".join(ops)) for by_stage in cells.values() for ops in by_stage.values()),
        default=4,
    )
    header = "slot  " + "".join(
        f"stage {s}".ljust(col_width) for s in range(schedule.n_stages)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for slot in range(schedule.ii):
        row = [f"{slot:4d}"]
        for stage in range(schedule.n_stages):
            ops = cells.get(slot, {}).get(stage, [])
            row.append(", ".join(ops).ljust(col_width))
        lines.append("  ".join(row).rstrip())
    return "\n".join(lines)


def lifetime_view(schedule: Schedule) -> str:
    """Render each value's live interval across the unrolled kernel."""
    from ..regalloc.rename import rename_kernel

    renamed = rename_kernel(schedule)
    period = renamed.period
    name_w = max((len(r.name) for r in renamed.ranges), default=4)
    lines = [
        f"live ranges of {schedule.loop.name!r} on the unrolled kernel "
        f"(period {period} = kmin {renamed.kmin} x II {schedule.ii})"
    ]
    for lr in sorted(renamed.ranges, key=lambda r: (r.is_invariant, r.name)):
        row = ["."] * period
        for c in range(min(lr.length, period)):
            row[(lr.start + c) % period] = "#"
        tag = " inv" if lr.is_invariant else ""
        lines.append(f"{lr.name.rjust(name_w)} |{''.join(row)}|{tag}")
    return "\n".join(lines)
