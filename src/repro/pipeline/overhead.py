"""Pipeline overhead: the second-order static quality measure of Figure 7.

"Before the steady state can execute the first time, the pipeline has to be
*filled*, and after the last execution of the steady state, the pipeline
has to be *drained*" (Section 4.6).  Overhead is constant relative to trip
count, so it dominates short-trip performance and vanishes asymptotically.

The model charges:

* ``(n_stages - 1) * II`` cycles each for fill and drain — the ramp in and
  out of the steady state;
* register save/restore cycles when the kernel uses more registers than
  the caller-saved pool, at two memory ports per cycle, on both sides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.sched import Schedule
from ..machine.descriptions import MachineDescription
from ..regalloc.coloring import AllocationResult

# Caller-saved registers available without save/restore, R8000 convention.
CALLER_SAVED_FP = 14
CALLER_SAVED_INT = 10


@dataclass(frozen=True)
class OverheadReport:
    fill_cycles: int
    drain_cycles: int
    save_restore_cycles: int

    @property
    def total(self) -> int:
        """Total cycles to enter and exit the pipelined loop."""
        return self.fill_cycles + self.drain_cycles + self.save_restore_cycles


def pipeline_overhead(
    schedule: Schedule,
    allocation: AllocationResult,
    machine: MachineDescription,
) -> OverheadReport:
    """Overhead of entering/exiting the software pipeline."""
    ramp = (schedule.n_stages - 1) * schedule.ii
    saved = max(0, allocation.fp_used - CALLER_SAVED_FP) + max(
        0, allocation.int_used - CALLER_SAVED_INT
    )
    ports = machine.availability.get("mem", 1)
    save_restore = 2 * math.ceil(saved / max(ports, 1))
    return OverheadReport(
        fill_cycles=ramp,
        drain_cycles=ramp,
        save_restore_cycles=save_restore,
    )
