"""Iterative modulo scheduling [Rau94]: the third scheduler in the showdown."""

from .scheduler import (
    RauOptions,
    RauResult,
    height_r,
    iterative_modulo_schedule,
    rau_pipeline_loop,
)

__all__ = [
    "RauOptions",
    "RauResult",
    "height_r",
    "iterative_modulo_schedule",
    "rau_pipeline_loop",
]
