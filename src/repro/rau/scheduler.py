"""Iterative modulo scheduling [Rau94] — the classic alternative heuristic.

The paper's epigraph and framework citation: B. R. Rau, *Iterative modulo
scheduling: an algorithm for software pipelining loops*, MICRO-27 (1994).
Implemented here as a third scheduler so the showdown can be extended with
the best-known non-backtracking heuristic:

* operations are picked by HeightR priority (longest II-adjusted path to
  any leaf of the dependence graph);
* each pick is placed at the first conflict-free cycle in the II-wide
  window starting at its earliest start (from scheduled *predecessors*
  only); if no slot is free, it is *force-placed* and the conflicting
  operations — resource conflicts and violated successors — are evicted
  and rescheduled later;
* the total number of placements is budgeted (``budget_ratio * n_ops``);
  exceeding the budget fails the candidate II.

Unlike the SGI branch-and-bound, there is no backtracking state: eviction
plus the monotone forced placement (never the same cycle twice in a row)
drives the search.  Register allocation and spilling reuse the same
machinery as the other two pipeliners.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.minii import min_ii as compute_min_ii
from ..core.sched import Schedule, SchedulingStats
from ..core.spill import MAX_SPILL_ROUNDS, choose_spill_candidates, insert_spills
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000
from ..machine.resources import ModuloReservationTable
from ..obs import get_recorder
from ..regalloc.coloring import AllocationResult, allocate_schedule


@dataclass
class RauOptions:
    """Configuration of the iterative modulo scheduler."""

    budget_ratio: float = 5.0  # placements allowed per operation
    ii_cap_factor: int = 2
    max_spill_rounds: int = MAX_SPILL_ROUNDS


@dataclass
class RauResult:
    """Outcome of iterative-modulo-scheduling one loop."""

    success: bool
    schedule: Optional[Schedule]
    allocation: Optional[AllocationResult]
    loop: Loop
    original: Loop
    min_ii: int
    spilled: List[str] = field(default_factory=list)
    stats: SchedulingStats = field(default_factory=SchedulingStats)

    @property
    def ii(self) -> Optional[int]:
        return self.schedule.ii if self.schedule is not None else None


def height_r(loop: Loop, ii: int) -> Dict[int, int]:
    """HeightR priority: longest path of ``latency - II*omega`` to any sink.

    Converges in at most ``n`` relaxation passes when II is feasible (no
    positive-weight cycles).
    """
    n = loop.n_ops
    heights = [0] * n
    arcs = [
        (a.src, a.dst, a.latency - ii * a.omega)
        for a in loop.ddg.arcs
        if a.src != a.dst
    ]
    for _ in range(n):
        changed = False
        for src, dst, w in arcs:
            if heights[dst] + w > heights[src]:
                heights[src] = heights[dst] + w
                changed = True
        if not changed:
            break
    return {op: heights[op] for op in range(n)}


def iterative_modulo_schedule(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    options: Optional[RauOptions] = None,
    stats: Optional[SchedulingStats] = None,
) -> Optional[Dict[int, int]]:
    """One candidate-II attempt; returns issue times or None."""
    options = options or RauOptions()
    heights = height_r(loop, ii)
    n = loop.n_ops
    budget = max(1, int(options.budget_ratio * n))

    mrt = ModuloReservationTable(ii, machine.availability)
    times: Dict[int, int] = {}
    last_cycle: Dict[int, int] = {}
    placements = 0
    evictions = 0

    # Hot-path precomputation (outcome-identical): the dynamic pick —
    # max by (height, -op) over unplaced ops — always selects the first
    # unplaced element of this static order; reservation tables are
    # pre-lowered once; dependence arcs become flat (neighbour, weight)
    # tuples so the main loop touches no DDG objects.
    order = sorted(range(n), key=lambda op: (-heights[op], op))
    tables = [machine.table(op.opclass) for op in loop.ops]
    lowered = [mrt.lower(t) for t in tables]
    pred_arcs = [
        tuple(
            (a.src, a.latency - ii * a.omega)
            for a in loop.ddg.preds(op)
            if a.src != op
        )
        for op in range(n)
    ]
    succ_arcs = [
        tuple(
            (a.dst, a.latency - ii * a.omega)
            for a in loop.ddg.succs(op)
            if a.dst != op
        )
        for op in range(n)
    ]
    wrap = (1 << ii) - 1

    def priority_pick() -> Optional[int]:
        for op in order:
            if op not in times:
                return op
        return None

    def earliest_start(op: int) -> int:
        start = 0
        for src, w in pred_arcs[op]:
            t = times.get(src)
            if t is not None and t + w > start:
                start = t + w
        return start

    def unplace(op: int) -> None:
        nonlocal evictions
        evictions += 1
        cycle = times.pop(op)
        mrt.remove_lowered(lowered[op], cycle)

    def evict_resource_conflicts(op: int, cycle: int) -> None:
        """Make room for a forced placement by evicting other occupants.

        Lower-priority occupants of the contested (slot, resource) pairs
        go first; they will be rescheduled on later iterations of the
        main loop.  The contested-pair scan follows the reservation
        table's *declared* use order (not the lowered sorted form) so the
        eviction sequence matches the original implementation exactly.
        """
        lt = lowered[op]
        table = tables[op]
        while not mrt.fits_lowered(lt, cycle):
            needed = None
            for use in table.uses:
                slot = (cycle + use.offset) % ii
                if mrt.used_at(slot, use.resource) + use.count > machine.availability[use.resource]:
                    needed = (slot, use.resource)
                    break
            if needed is None:  # self-conflict (op longer than II): hopeless
                return
            slot, resource = needed
            victims = [
                other
                for other in times
                if other != op
                and any(
                    (times[other] + u.offset) % ii == slot and u.resource == resource
                    for u in tables[other].uses
                )
            ]
            if not victims:
                return
            victim = min(victims, key=lambda o: (heights[o], -o))
            unplace(victim)

    result_times: Optional[Dict[int, int]] = None
    while True:
        op = priority_pick()
        if op is None:
            result_times = dict(times)
            break
        if placements >= budget:
            break
        placements += 1
        estart = earliest_start(op)
        lt = lowered[op]
        chosen = None
        # First conflict-free cycle in [estart, estart + II): one blocked
        # mask replaces the cycle-by-cycle probing (the II-wide window
        # visits every modulo slot exactly once).
        free = ~mrt.blocked_mask(lt) & wrap
        if free:
            r = estart % ii
            aligned = ((free >> r) | (free << (ii - r))) & wrap
            chosen = estart + (aligned & -aligned).bit_length() - 1
        if chosen is None:
            # Forced placement: never the same cycle as last time.
            chosen = max(estart, last_cycle.get(op, -1) + 1)
            evict_resource_conflicts(op, chosen)
            if not mrt.fits_lowered(lt, chosen):
                break  # an op that cannot coexist with itself at this II
        mrt.place_lowered(lt, chosen)
        times[op] = chosen
        last_cycle[op] = chosen
        # Displace successors whose dependence constraints are now violated
        # (predecessors were respected via the earliest start).
        for dst, w in succ_arcs[op]:
            t = times.get(dst)
            if t is not None and t - chosen < w:
                unplace(dst)
        for src, w in pred_arcs[op]:
            t = times.get(src)
            if t is not None and chosen - t < w:
                unplace(src)

    if stats is not None:
        stats.placements += placements
        stats.evictions += evictions
    rec = get_recorder()
    if rec.enabled:
        rec.counter("rau.placements", placements)
        rec.counter("rau.evictions", evictions)
        rec.event(
            "rau.attempt",
            loop=loop.name,
            ii=ii,
            success=result_times is not None,
            placements=placements,
            evictions=evictions,
        )
    return result_times


def rau_pipeline_loop(
    loop: Loop,
    machine: Optional[MachineDescription] = None,
    options: Optional[RauOptions] = None,
    verify: Optional[bool] = None,
) -> RauResult:
    """Full Rau94 pipeliner: linear II search, allocation, spilling.

    ``verify`` cross-checks successful results with the independent
    ``repro.verify`` analyzers (``None`` = process default); ERROR
    diagnostics raise :class:`repro.verify.VerificationError`.
    """
    from ..core.driver import _maybe_verify
    machine = machine if machine is not None else r8000()
    options = options or RauOptions()
    stats = SchedulingStats()
    original = loop
    original_min_ii = compute_min_ii(loop, machine)

    current = loop
    spilled_total: List[str] = []
    spill_budget = 1
    for spill_round in range(options.max_spill_rounds + 1):
        mii = compute_min_ii(current, machine)
        best_failed: Optional[Tuple[Schedule, AllocationResult]] = None
        found = None
        # Rau94 searches IIs linearly from MinII.
        for ii in range(mii, options.ii_cap_factor * mii + 1):
            start = _time.perf_counter()
            with get_recorder().span("rau.ii", loop=current.name, ii=ii):
                times = iterative_modulo_schedule(current, machine, ii, options, stats)
            stats.attempts += 1
            stats.seconds += _time.perf_counter() - start
            if times is None:
                continue
            schedule = Schedule(
                loop=current, machine=machine, ii=ii, times=times, producer="rau94"
            )
            allocation = allocate_schedule(schedule, machine)
            if allocation.success:
                found = (schedule, allocation)
                break
            if best_failed is None:
                best_failed = (schedule, allocation)
        if found is not None:
            return _maybe_verify(
                RauResult(
                    success=True,
                    schedule=found[0],
                    allocation=found[1],
                    loop=current,
                    original=original,
                    min_ii=original_min_ii,
                    spilled=spilled_total,
                    stats=stats,
                ),
                machine,
                verify,
            )
        if best_failed is None:
            break
        distinct = len({lr.value for lr in best_failed[1].uncolored})
        candidates = choose_spill_candidates(
            best_failed[1], current, set(spilled_total),
            min(spill_budget, max(1, distinct)),
        )
        if not candidates or spill_round == options.max_spill_rounds:
            break
        current = insert_spills(current, machine, candidates)
        spilled_total.extend(candidates)
        spill_budget *= 2
    return RauResult(
        success=False,
        schedule=None,
        allocation=None,
        loop=current,
        original=original,
        min_ii=original_min_ii,
        spilled=spilled_total,
        stats=stats,
    )
