"""MOST: the optimal (ILP-based) modulo scheduler."""

from .formulation import ScheduleFormulation, build_formulation
from .scheduler import MostOptions, MostResult, MostStats, most_pipeline_loop

__all__ = [
    "MostOptions",
    "MostResult",
    "MostStats",
    "ScheduleFormulation",
    "build_formulation",
    "most_pipeline_loop",
]
