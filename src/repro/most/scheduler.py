"""The MOST driver: optimal modulo scheduling via ILP with fallbacks.

Mirrors the adjusted McGill methodology of Section 3.3:

1. a *resource-constrained* schedule is sought first (the integrated
   register-optimal formulation was too slow to be usable);
2. a second solve minimises *buffers* — iteration overlap — under a time
   limit, accepting the best suboptimal solution found;
3. the solver's branch order follows the same multiple priority-order
   heuristics as the SGI pipeliner, tried in turn until one solves;
4. the heuristic pipeliner backs the whole thing up (Section 4.4): not
   every loop the SGI pipeliner schedules is reachable by MOST in
   reasonable time.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional

from ..core.driver import PipelineResult, PipelinerOptions, pipeline_loop
from ..core.minii import min_ii as compute_min_ii
from ..core.priorities import production_orders
from ..core.sched import Schedule
from ..ilp.solver import MILPResult, SolverOptions, Status, solve_milp
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000
from ..obs import get_recorder
from ..regalloc.coloring import AllocationResult, allocate_schedule
from .formulation import ScheduleFormulation, build_formulation


#: The study's limit on searches for optimal schedules ("we used 3
#: minutes").  This is the *single* definition of the paper's budget;
#: experiment configurations shrink it, but every deadline below flows
#: through one :class:`SolveBudget` built from ``MostOptions.time_limit``.
PAPER_TIME_LIMIT = 180.0


@dataclass
class SolveBudget:
    """Sole owner of the MOST wall-clock budget for one loop.

    Every solver invocation asks this object for its slice; a slice can
    never exceed either the configured total or what actually remains, so
    the per-order split of §3.3 adjustment 3 and the stage-2 re-solve
    cannot overshoot the budget no matter how the knobs are set.
    """

    total: float
    started: float = field(default_factory=time.perf_counter)

    def remaining(self) -> float:
        return max(0.0, self.started + self.total - time.perf_counter())

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def slice(self, parts: int = 1, floor: float = 0.0) -> float:
        """An even ``1/parts`` share of the total, capped by what remains.

        ``floor`` lifts tiny shares (many priority orders, small budget) so
        a solve is not pointlessly invoked with microseconds — but never
        above the remaining budget.
        """
        remaining = self.remaining()
        share = max(self.total / max(parts, 1), floor)
        share = min(share, remaining)
        assert share <= self.total + 1e-9, (
            f"budget slice {share:.3f}s exceeds configured total {self.total:.3f}s"
        )
        assert share <= remaining + 1e-9, (
            f"budget slice {share:.3f}s exceeds remaining {remaining:.3f}s"
        )
        return share


@dataclass
class MostOptions:
    """Configuration of the optimal pipeliner."""

    # Per-loop search budget; defaults to the paper's three minutes
    # (experiment configurations pass their own, much smaller, value).
    time_limit: float = PAPER_TIME_LIMIT
    minimize_buffers: bool = True
    # "overhead": minimise the stage count instead of buffers — the ILP
    # objective the paper's conclusions propose as future work (§5).
    objective: str = "buffers"
    integrated: bool = False  # single integrated solve (ablation, §3.3 adj. 1)
    engine: str = "bnb"  # "bnb" (ours) or "scipy" (HiGHS)
    priority_branching: bool = True  # §3.3 adjustment 3
    max_ops: int = 80  # loops beyond this go straight to the fallback
    ii_cap_factor: int = 2
    stages: Optional[int] = None
    fallback: bool = True  # use the heuristic pipeliner as backup
    max_nodes: int = 200_000
    # Print one line per ILP solve (nodes, simplex iterations, MIP gap,
    # which budget stopped it) to stderr — the human-readable face of the
    # counters :class:`MostStats` accumulates.
    log_solves: bool = False

    def budget(self) -> SolveBudget:
        """Start the wall clock on this loop's solve budget."""
        return SolveBudget(total=self.time_limit)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MostOptions":
        """Build options from a JSON-style mapping (the repro.exec cell form)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown MostOptions keys: {', '.join(unknown)}")
        return cls(**dict(data))


@dataclass
class MostStats:
    solves: int = 0
    nodes: int = 0
    simplex_iterations: int = 0
    node_limit_hits: int = 0  # solves stopped by the node budget
    time_limit_hits: int = 0  # solves stopped by a wall-clock budget
    seconds: float = 0.0


def _account_solve(
    stats: MostStats, options: MostOptions, context: str, result: MILPResult
) -> None:
    """Fold one solver result into the stats; optionally log it."""
    stats.solves += 1
    stats.nodes += result.nodes
    stats.simplex_iterations += result.simplex_iterations
    stats.node_limit_hits += int(result.limit == "nodes")
    stats.time_limit_hits += int(result.limit in ("time", "budget"))
    stats.seconds += result.seconds
    if options.log_solves:
        gap = "-" if result.mip_gap is None else f"{result.mip_gap:.4f}"
        print(
            f"[most] {context}: status={result.status.value} nodes={result.nodes} "
            f"simplex={result.simplex_iterations} gap={gap} "
            f"limit={result.limit or 'none'} {result.seconds:.2f}s",
            file=sys.stderr,
        )


@dataclass
class MostResult:
    """Outcome of the optimal pipeliner (possibly via fallback)."""

    success: bool
    schedule: Optional[Schedule]
    allocation: Optional[AllocationResult]
    loop: Loop
    min_ii: int
    optimal: bool = False  # II-optimality proven by the ILP
    buffers: Optional[int] = None  # buffer objective value, when minimised
    fallback_used: bool = False
    fallback_result: Optional[PipelineResult] = None
    stats: MostStats = field(default_factory=MostStats)

    @property
    def ii(self) -> Optional[int]:
        return self.schedule.ii if self.schedule is not None else None


def _solve_with_orders(
    formulation: ScheduleFormulation,
    loop: Loop,
    machine: MachineDescription,
    options: MostOptions,
    stats: MostStats,
    budget: SolveBudget,
) -> Optional[MILPResult]:
    """Solve one formulation, trying each SGI priority order as the branch
    order until a solution appears (§3.3 adjustment 3)."""
    orders: List[Optional[List[int]]]
    if options.priority_branching:
        orders = [
            formulation.branch_priority(order)
            for order in production_orders(loop, machine).values()
        ]
    else:
        orders = [None]
    rec = get_recorder()
    for order_index, branch_priority in enumerate(orders):
        remaining = budget.remaining()
        if remaining <= 0:
            return None
        slice_seconds = (
            remaining
            if len(orders) == 1
            else budget.slice(parts=len(orders), floor=1.0)
        )
        if rec.enabled:
            rec.counter("most.budget_slice_seconds", slice_seconds)
        solver_options = SolverOptions(
            time_limit=slice_seconds,
            branch_priority=branch_priority,
            engine=options.engine,
            max_nodes=options.max_nodes,
            # Stage 1 is a feasibility question: the first schedule wins.
            first_solution=not options.integrated,
            branch_up_first=branch_priority is not None,
        )
        with rec.span(
            "most.solve",
            loop=loop.name,
            order=order_index,
            slice_seconds=round(slice_seconds, 3),
        ):
            result = solve_milp(formulation.model, solver_options)
        _account_solve(stats, options, f"{loop.name} order#{order_index}", result)
        if result.status is Status.INFEASIBLE:
            return result  # proven: no order can help
        if result.has_solution:
            return result
    return None


def most_pipeline_loop(
    loop: Loop,
    machine: Optional[MachineDescription] = None,
    options: Optional[MostOptions] = None,
    verify: Optional[bool] = None,
) -> MostResult:
    """Schedule ``loop`` with the ILP pipeliner, falling back to heuristics.

    ``verify`` cross-checks successful results with the independent
    ``repro.verify`` analyzers (``None`` = process default); ERROR
    diagnostics raise :class:`repro.verify.VerificationError`.
    """
    from ..core.driver import _maybe_verify
    machine = machine if machine is not None else r8000()
    options = options or MostOptions()
    stats = MostStats()
    mii = compute_min_ii(loop, machine)
    budget = options.budget()

    rec = get_recorder()
    if loop.n_ops <= options.max_ops:
        max_ii = options.ii_cap_factor * mii
        # II-optimality is proven when every smaller II was proven
        # infeasible (MinII itself is a hard lower bound).
        smaller_proven_infeasible = True
        for ii in range(mii, max_ii + 1):
            if budget.expired():
                break
            if rec.enabled:
                rec.counter("most.ii_attempts")
                rec.event("most.ii", loop=loop.name, ii=ii)
            formulation = build_formulation(
                loop,
                machine,
                ii,
                stages=options.stages,
                minimize_buffers=options.integrated,
            )
            if formulation.infeasible:
                continue  # proven infeasible at this II (window collapse)
            result = _solve_with_orders(formulation, loop, machine, options, stats, budget)
            if result is None:
                smaller_proven_infeasible = False
                continue  # inconclusive at this II; try the next
            if result.status is Status.INFEASIBLE:
                continue
            times = formulation.decode_times(result)
            optimal = smaller_proven_infeasible
            buffers: Optional[int] = None
            if options.integrated and result.objective is not None:
                buffers = int(round(result.objective))
            if options.minimize_buffers and not options.integrated:
                # Cap the secondary solve so one II cannot starve the rest
                # of the II range of solver time: at most a third of the
                # budget, and never more than remains of it.
                times, buffers = _optimise_secondary(
                    loop, machine, ii, times, options, stats,
                    budget.slice(parts=3),
                )
            schedule = Schedule(
                loop=loop, machine=machine, ii=ii, times=times, producer="most/ilp"
            )
            allocation = allocate_schedule(schedule, machine)
            if allocation.success:
                return _maybe_verify(
                    MostResult(
                        success=True,
                        schedule=schedule,
                        allocation=allocation,
                        loop=loop,
                        min_ii=mii,
                        optimal=optimal,
                        buffers=buffers,
                        stats=stats,
                    ),
                    machine,
                    verify,
                )
            # Register allocation failed at this II: a larger II shortens
            # relative lifetimes, so keep walking the II range before
            # resorting to the heuristic fallback.
            smaller_proven_infeasible = False

    if not options.fallback:
        return MostResult(
            success=False,
            schedule=None,
            allocation=None,
            loop=loop,
            min_ii=mii,
            stats=stats,
        )
    # verify=False here: the wrapping MostResult is verified below instead,
    # so the fallback schedule is not checked twice.
    fallback = pipeline_loop(
        loop, machine, PipelinerOptions(enable_membank=False), verify=False
    )
    return _maybe_verify(
        MostResult(
            success=fallback.success,
            schedule=fallback.schedule,
            allocation=fallback.allocation,
            loop=fallback.loop,
            min_ii=mii,
            fallback_used=True,
            fallback_result=fallback,
            stats=stats,
        ),
        machine,
        verify,
    )


def _optimise_secondary(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    initial_times: Dict[int, int],
    options: MostOptions,
    stats: MostStats,
    time_limit: float,
):
    """Stage 2: re-solve with the secondary objective under the budget.

    Keeps the stage-1 schedule when the solver cannot improve on it in
    time ("it would accept the best suboptimal solution found, if any").
    The objective is buffers (§3.3) or, as the extension of §5, the stage
    count that loop overhead scales with.  ``time_limit`` is the slice of
    the loop's :class:`SolveBudget` this stage may consume.
    """
    if time_limit <= 0.5:
        return initial_times, None
    # The stage-1 schedule is a feasible incumbent: its own objective value
    # is a sound cutoff that prunes most of the minimisation tree.
    incumbent = Schedule(
        loop=loop, machine=machine, ii=ii, times=dict(initial_times), producer="most/stage1"
    )
    if options.objective == "overhead":
        formulation = build_formulation(
            loop,
            machine,
            ii,
            stages=options.stages,
            minimize_overhead=True,
            overhead_cutoff=incumbent.n_stages,
        )
    else:
        formulation = build_formulation(
            loop,
            machine,
            ii,
            stages=options.stages,
            minimize_buffers=True,
            buffer_cutoff=incumbent.buffer_count(),
        )
    if formulation.infeasible:
        return initial_times, None
    solver_options = SolverOptions(
        time_limit=time_limit,
        branch_priority=(
            formulation.branch_priority(
                next(iter(production_orders(loop, machine).values()))
            )
            if options.priority_branching
            else None
        ),
        engine=options.engine,
        max_nodes=options.max_nodes,
        branch_up_first=options.priority_branching,
    )
    with get_recorder().span("most.secondary", loop=loop.name, ii=ii):
        result = solve_milp(formulation.model, solver_options)
    _account_solve(stats, options, f"{loop.name} stage2@II={ii}", result)
    if result.has_solution:
        return formulation.decode_times(result), int(round(result.objective))
    return initial_times, None
