"""Time-indexed ILP formulation of modulo scheduling (Section 3).

For a candidate II and a horizon of ``T = K * II`` cycles, binary variables
``a[i, t]`` select the issue cycle of each operation in the first iteration:

* assignment:   sum_t a[i, t] == 1                       (each op once)
* sigma_i = sum_t t * a[i, t]                            (issue time)
* dependence:   sigma_j - sigma_i >= latency - II*omega  (for every arc)
* resources:    for each modulo slot m and resource r,
                sum over ops and reservation offsets landing in slot m
                of a[i, t] * count <= availability(r)

Variable domains are tightened to the ASAP/ALAP windows implied by the
dependence graph at this II — a standard reduction that leaves the set of
feasible schedules untouched while shrinking the model dramatically.

The *resource-constrained* formulation stops there (adjustment 1 of
Section 3.3: the integrated register-optimal formulation was "just too
slow").  The *buffer-minimisation* objective (adjustment 2) adds integer
buffer counts per value, ``II * b_v >= sigma_j - sigma_i + II*omega`` for
each consumer, and minimises their sum — which "directly translates into
the reduction of the number of iterations overlapped".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ilp.model import Model, Sense, Var
from ..ir.ddg import DepKind
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription


@dataclass
class ScheduleFormulation:
    """An ILP model plus the bookkeeping to decode its solutions."""

    model: Model
    loop: Loop
    ii: int
    horizon: int
    assign: Dict[Tuple[int, int], Var]  # (op, t) -> binary variable
    buffers: Dict[str, Var] = field(default_factory=dict)  # value -> buffer count
    infeasible: bool = False  # ASAP/ALAP windows collapsed at this horizon

    def decode_times(self, result) -> Dict[int, int]:
        """Extract issue cycles from a solved model."""
        times: Dict[int, int] = {}
        for (op, t), var in self.assign.items():
            if result.value(var) > 0.5:
                times[op] = t
        missing = set(range(self.loop.n_ops)) - set(times)
        if missing:
            raise ValueError(f"solution does not place ops {sorted(missing)}")
        return times

    def branch_priority(self, op_order: List[int]) -> List[int]:
        """Variable indices in SGI-priority-then-time order (§3.3 adj. 3)."""
        priority: List[int] = []
        for op in op_order:
            for t in range(self.horizon):
                var = self.assign.get((op, t))
                if var is not None:
                    priority.append(var.index)
        return priority


def _critical_path(loop: Loop) -> int:
    """Longest acyclic latency path (carried arcs excluded)."""
    heights = loop.ddg.height_map()
    return max(heights.values(), default=0) + 1


def default_horizon_stages(loop: Loop, machine: MachineDescription, ii: int) -> int:
    """Stage bound K: enough for the critical path plus slack."""
    return max(2, math.ceil((_critical_path(loop) + 1) / ii) + 1)


def _time_windows(loop: Loop, ii: int, horizon: int) -> Optional[List[Tuple[int, int]]]:
    """ASAP/ALAP windows per operation at this II and horizon.

    Longest-path relaxation over arc weights ``latency - II*omega``; no
    positive cycles exist at a feasible II, so ``n`` passes converge.
    Returns None when some window is empty (horizon too small or II
    infeasible).
    """
    n = loop.n_ops
    arcs = [
        (a.src, a.dst, a.latency - ii * a.omega)
        for a in loop.ddg.arcs
        if a.src != a.dst
    ]
    earliest = [0] * n
    for _ in range(n):
        changed = False
        for src, dst, w in arcs:
            if earliest[src] + w > earliest[dst]:
                earliest[dst] = earliest[src] + w
                changed = True
        if not changed:
            break
    latest = [horizon - 1] * n
    for _ in range(n):
        changed = False
        for src, dst, w in arcs:
            if latest[dst] - w < latest[src]:
                latest[src] = latest[dst] - w
                changed = True
        if not changed:
            break
    windows = list(zip(earliest, latest))
    if any(lo > hi for lo, hi in windows):
        return None
    return windows


def build_formulation(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    stages: Optional[int] = None,
    minimize_buffers: bool = False,
    buffer_cutoff: Optional[int] = None,
    minimize_overhead: bool = False,
    overhead_cutoff: Optional[int] = None,
) -> ScheduleFormulation:
    """Build the modulo scheduling ILP, with an optional secondary objective.

    ``minimize_buffers`` reproduces MOST's adjusted objective (§3.3);
    ``minimize_overhead`` implements the paper's closing suggestion — "an
    ILP formulation ... that optimizes loop overhead more directly than by
    optimizing register usage" (§5) — by minimising the pipeline's stage
    count ``S >= (sigma_i + 1) / II``, which is what fill/drain cost scales
    with.  ``buffer_cutoff``/``overhead_cutoff`` add sound upper bounds
    from an already-known feasible schedule, a large help to the
    branch-and-bound.
    """
    if stages is None:
        stages = default_horizon_stages(loop, machine, ii)
    horizon = stages * ii
    model = Model(name=f"most-{loop.name}-ii{ii}")

    for arc in loop.ddg.arcs:
        if arc.src == arc.dst and arc.latency > ii * arc.omega:
            return ScheduleFormulation(
                model=model, loop=loop, ii=ii, horizon=horizon, assign={}, infeasible=True
            )
    windows = _time_windows(loop, ii, horizon)
    if windows is None:
        return ScheduleFormulation(
            model=model, loop=loop, ii=ii, horizon=horizon, assign={}, infeasible=True
        )

    assign: Dict[Tuple[int, int], Var] = {}
    for op in range(loop.n_ops):
        lo, hi = windows[op]
        for t in range(lo, hi + 1):
            assign[(op, t)] = model.add_var(f"a[{op},{t}]", binary=True)

    def domain(op: int):
        lo, hi = windows[op]
        return range(lo, hi + 1)

    # Each operation scheduled exactly once.
    for op in range(loop.n_ops):
        model.add_constraint(
            {assign[(op, t)]: 1.0 for t in domain(op)},
            Sense.EQ,
            1.0,
            name=f"assign[{op}]",
        )

    # Dependence arcs: sigma_j - sigma_i >= latency - II*omega.
    for arc in loop.ddg.arcs:
        if arc.src == arc.dst:
            continue  # handled by the feasibility screen above
        coeffs: Dict[Var, float] = {}
        for t in domain(arc.dst):
            var = assign[(arc.dst, t)]
            coeffs[var] = coeffs.get(var, 0.0) + t
        for t in domain(arc.src):
            var = assign[(arc.src, t)]
            coeffs[var] = coeffs.get(var, 0.0) - t
        model.add_constraint(
            coeffs,
            Sense.GE,
            arc.latency - ii * arc.omega,
            name=f"dep[{arc.src}->{arc.dst}]",
        )

    # Modulo resource constraints.
    for slot in range(ii):
        demand: Dict[str, Dict[Var, float]] = {}
        for op in range(loop.n_ops):
            table = machine.table(loop.ops[op].opclass)
            for use in table.uses:
                for t in domain(op):
                    if (t + use.offset) % ii != slot:
                        continue
                    row = demand.setdefault(use.resource, {})
                    var = assign[(op, t)]
                    row[var] = row.get(var, 0.0) + use.count
        for resource, row in demand.items():
            model.add_constraint(
                row,
                Sense.LE,
                machine.availability[resource],
                name=f"res[{resource}@{slot}]",
            )

    def lifetime_tiebreak(objective: Dict[Var, float]) -> None:
        """Add a < 1-total lifetime term: prefer register-friendly optima."""
        flow_arcs = [
            arc
            for arc in loop.ddg.arcs
            if arc.kind is DepKind.FLOW and arc.value and arc.src != arc.dst
        ]
        if not flow_arcs:
            return
        epsilon = 0.9 / (len(flow_arcs) * (horizon + 1) + 1)
        for arc in flow_arcs:
            for t in domain(arc.dst):
                var = assign[(arc.dst, t)]
                objective[var] = objective.get(var, 0.0) + epsilon * t
            for t in domain(arc.src):
                var = assign[(arc.src, t)]
                objective[var] = objective.get(var, 0.0) - epsilon * t

    buffers: Dict[str, Var] = {}
    if minimize_overhead:
        # S >= (sigma_i + 1) / II for every op; minimise S (the number of
        # pipestages), i.e. the fill/drain ramp of Section 4.6.
        s_var = model.add_var("stages", lb=1.0, ub=float(stages), integer=True)
        for op in range(loop.n_ops):
            coeffs: Dict[Var, float] = {s_var: float(ii)}
            for t in domain(op):
                var = assign[(op, t)]
                coeffs[var] = coeffs.get(var, 0.0) - t
            model.add_constraint(coeffs, Sense.GE, 1.0, name=f"stage[{op}]")
        if overhead_cutoff is not None:
            model.add_constraint({s_var: 1.0}, Sense.LE, float(overhead_cutoff))
        objective: Dict[Var, float] = {s_var: 1.0}
        lifetime_tiebreak(objective)
        model.set_objective(objective, minimize=True)
        return ScheduleFormulation(
            model=model, loop=loop, ii=ii, horizon=horizon, assign=assign, buffers={}
        )
    if minimize_buffers:
        # One buffer count per value: II * b_v >= sigma_j - sigma_i + II*omega
        # for every consumer j of the value.
        for arc in loop.ddg.arcs:
            if arc.kind is not DepKind.FLOW or not arc.value:
                continue
            b = buffers.get(arc.value)
            if b is None:
                b = model.add_var(
                    f"buf[{arc.value}]", lb=0.0, ub=float(stages + 1), integer=True
                )
                buffers[arc.value] = b
            if arc.src == arc.dst:
                # Lifetime of a self-recurrence is II*omega: b >= omega.
                model.add_constraint({b: 1.0}, Sense.GE, float(arc.omega))
                continue
            coeffs: Dict[Var, float] = {b: float(ii)}
            for t in domain(arc.dst):
                var = assign[(arc.dst, t)]
                coeffs[var] = coeffs.get(var, 0.0) - t
            for t in domain(arc.src):
                var = assign[(arc.src, t)]
                coeffs[var] = coeffs.get(var, 0.0) + t
            model.add_constraint(
                coeffs,
                Sense.GE,
                float(ii * arc.omega),
                name=f"buf[{arc.value}<-{arc.dst}]",
            )
        if buffer_cutoff is not None and buffers:
            model.add_constraint(
                {b: 1.0 for b in buffers.values()},
                Sense.LE,
                float(buffer_cutoff),
                name="buffer-cutoff",
            )
        # Primary objective: total buffers.  Secondary (lexicographic via a
        # weight too small to trade against one buffer): total lifetime —
        # among buffer-optimal schedules prefer the register-friendly ones
        # rather than ones that stretch every value to exactly II cycles.
        objective: Dict[Var, float] = {b: 1.0 for b in buffers.values()}
        lifetime_tiebreak(objective)
        model.set_objective(objective, minimize=True)
    else:
        # Resource-constrained stage: compact schedules help the search and
        # shorten lifetimes without constraining feasibility.
        objective: Dict[Var, float] = {}
        for (op, t), var in assign.items():
            objective[var] = float(t)
        model.set_objective(objective, minimize=True)

    return ScheduleFormulation(
        model=model, loop=loop, ii=ii, horizon=horizon, assign=assign, buffers=buffers
    )
