"""Time-indexed ILP formulation of modulo scheduling (Section 3).

For a candidate II and a horizon of ``T = K * II`` cycles, binary variables
``a[i, t]`` select the issue cycle of each operation in the first iteration:

* assignment:   sum_t a[i, t] == 1                       (each op once)
* sigma_i = sum_t t * a[i, t]                            (issue time)
* dependence:   sigma_j - sigma_i >= latency - II*omega  (for every arc)
* resources:    for each modulo slot m and resource r,
                sum over ops and reservation offsets landing in slot m
                of a[i, t] * count <= availability(r)

Variable domains are tightened to the ASAP/ALAP windows implied by the
dependence graph at this II — a standard reduction that leaves the set of
feasible schedules untouched while shrinking the model dramatically.

The windows, arcs and modulo resource rows themselves live in the
backend-neutral :class:`repro.portfolio.formulation.ModuloFormulation`;
this module is *one encoding of it* (the others are the CP and SMT
backends of :mod:`repro.portfolio`).  The split keeps cross-backend
agreement meaningful: every backend answers literally the same object.

The *resource-constrained* formulation stops there (adjustment 1 of
Section 3.3: the integrated register-optimal formulation was "just too
slow").  The *buffer-minimisation* objective (adjustment 2) adds integer
buffer counts per value, ``II * b_v >= sigma_j - sigma_i + II*omega`` for
each consumer, and minimises their sum — which "directly translates into
the reduction of the number of iterations overlapped".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ilp.model import Model, Sense, Var
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from ..portfolio.formulation import (
    ModuloFormulation,
    build_modulo_formulation,
    critical_path,
    default_horizon_stages,
    time_windows,
)

__all__ = [
    "ScheduleFormulation",
    "build_formulation",
    "default_horizon_stages",
    "model_from_formulation",
]


@dataclass
class ScheduleFormulation:
    """An ILP model plus the bookkeeping to decode its solutions."""

    model: Model
    loop: Loop
    ii: int
    horizon: int
    assign: Dict[Tuple[int, int], Var]  # (op, t) -> binary variable
    buffers: Dict[str, Var] = field(default_factory=dict)  # value -> buffer count
    infeasible: bool = False  # ASAP/ALAP windows collapsed at this horizon

    def decode_times(self, result) -> Dict[int, int]:
        """Extract issue cycles from a solved model."""
        times: Dict[int, int] = {}
        for (op, t), var in self.assign.items():
            if result.value(var) > 0.5:
                times[op] = t
        missing = set(range(self.loop.n_ops)) - set(times)
        if missing:
            raise ValueError(f"solution does not place ops {sorted(missing)}")
        return times

    def branch_priority(self, op_order: List[int]) -> List[int]:
        """Variable indices in SGI-priority-then-time order (§3.3 adj. 3)."""
        priority: List[int] = []
        for op in op_order:
            for t in range(self.horizon):
                var = self.assign.get((op, t))
                if var is not None:
                    priority.append(var.index)
        return priority


def _critical_path(loop: Loop) -> int:
    """Longest acyclic latency path (moved to repro.portfolio.formulation)."""
    return critical_path(loop)


def _time_windows(loop: Loop, ii: int, horizon: int) -> Optional[List[Tuple[int, int]]]:
    """ASAP/ALAP windows (moved to repro.portfolio.formulation)."""
    return time_windows(loop, ii, horizon)


def model_from_formulation(
    neutral: ModuloFormulation,
    loop: Loop,
    minimize_buffers: bool = False,
    buffer_cutoff: Optional[int] = None,
    minimize_overhead: bool = False,
    overhead_cutoff: Optional[int] = None,
) -> ScheduleFormulation:
    """Encode one neutral formulation as the time-indexed ILP.

    Variable and constraint order follow the neutral object's op, window
    and arc order exactly, which themselves follow the loop's DDG — so
    this refactor is bit-identical to the historical inline builder (the
    branch-and-bound explores the same tree and returns the same
    schedules).
    """
    ii = neutral.ii
    stages = neutral.stages
    horizon = neutral.horizon
    model = Model(name=f"most-{neutral.loop_name}-ii{ii}")

    if neutral.infeasible:
        return ScheduleFormulation(
            model=model, loop=loop, ii=ii, horizon=horizon, assign={}, infeasible=True
        )
    windows = neutral.windows

    assign: Dict[Tuple[int, int], Var] = {}
    for op in range(neutral.n_ops):
        lo, hi = windows[op]
        for t in range(lo, hi + 1):
            assign[(op, t)] = model.add_var(f"a[{op},{t}]", binary=True)

    def domain(op: int):
        lo, hi = windows[op]
        return range(lo, hi + 1)

    # Each operation scheduled exactly once.
    for op in range(neutral.n_ops):
        model.add_constraint(
            {assign[(op, t)]: 1.0 for t in domain(op)},
            Sense.EQ,
            1.0,
            name=f"assign[{op}]",
        )

    # Dependence arcs: sigma_j - sigma_i >= latency - II*omega.
    for arc in neutral.arcs:
        if arc.src == arc.dst:
            continue  # handled by the feasibility screen in the neutral build
        coeffs: Dict[Var, float] = {}
        for t in domain(arc.dst):
            var = assign[(arc.dst, t)]
            coeffs[var] = coeffs.get(var, 0.0) + t
        for t in domain(arc.src):
            var = assign[(arc.src, t)]
            coeffs[var] = coeffs.get(var, 0.0) - t
        model.add_constraint(
            coeffs,
            Sense.GE,
            arc.weight(ii),
            name=f"dep[{arc.src}->{arc.dst}]",
        )

    # Modulo resource constraints.
    for slot in range(ii):
        demand: Dict[str, Dict[Var, float]] = {}
        for op in range(neutral.n_ops):
            for offset, resource, count in neutral.op_uses[op]:
                for t in domain(op):
                    if (t + offset) % ii != slot:
                        continue
                    row = demand.setdefault(resource, {})
                    var = assign[(op, t)]
                    row[var] = row.get(var, 0.0) + count
        for resource, row in demand.items():
            model.add_constraint(
                row,
                Sense.LE,
                neutral.availability[resource],
                name=f"res[{resource}@{slot}]",
            )

    def lifetime_tiebreak(objective: Dict[Var, float]) -> None:
        """Add a < 1-total lifetime term: prefer register-friendly optima."""
        flow_arcs = [
            arc for arc in neutral.flow_value_arcs() if arc.src != arc.dst
        ]
        if not flow_arcs:
            return
        epsilon = 0.9 / (len(flow_arcs) * (horizon + 1) + 1)
        for arc in flow_arcs:
            for t in domain(arc.dst):
                var = assign[(arc.dst, t)]
                objective[var] = objective.get(var, 0.0) + epsilon * t
            for t in domain(arc.src):
                var = assign[(arc.src, t)]
                objective[var] = objective.get(var, 0.0) - epsilon * t

    buffers: Dict[str, Var] = {}
    if minimize_overhead:
        # S >= (sigma_i + 1) / II for every op; minimise S (the number of
        # pipestages), i.e. the fill/drain ramp of Section 4.6.
        s_var = model.add_var("stages", lb=1.0, ub=float(stages), integer=True)
        for op in range(neutral.n_ops):
            coeffs: Dict[Var, float] = {s_var: float(ii)}
            for t in domain(op):
                var = assign[(op, t)]
                coeffs[var] = coeffs.get(var, 0.0) - t
            model.add_constraint(coeffs, Sense.GE, 1.0, name=f"stage[{op}]")
        if overhead_cutoff is not None:
            model.add_constraint({s_var: 1.0}, Sense.LE, float(overhead_cutoff))
        objective: Dict[Var, float] = {s_var: 1.0}
        lifetime_tiebreak(objective)
        model.set_objective(objective, minimize=True)
        return ScheduleFormulation(
            model=model, loop=loop, ii=ii, horizon=horizon, assign=assign, buffers={}
        )
    if minimize_buffers:
        # One buffer count per value: II * b_v >= sigma_j - sigma_i + II*omega
        # for every consumer j of the value.
        for arc in neutral.arcs:
            if arc.kind != "flow" or not arc.value:
                continue
            b = buffers.get(arc.value)
            if b is None:
                b = model.add_var(
                    f"buf[{arc.value}]", lb=0.0, ub=float(stages + 1), integer=True
                )
                buffers[arc.value] = b
            if arc.src == arc.dst:
                # Lifetime of a self-recurrence is II*omega: b >= omega.
                model.add_constraint({b: 1.0}, Sense.GE, float(arc.omega))
                continue
            coeffs: Dict[Var, float] = {b: float(ii)}
            for t in domain(arc.dst):
                var = assign[(arc.dst, t)]
                coeffs[var] = coeffs.get(var, 0.0) - t
            for t in domain(arc.src):
                var = assign[(arc.src, t)]
                coeffs[var] = coeffs.get(var, 0.0) + t
            model.add_constraint(
                coeffs,
                Sense.GE,
                float(ii * arc.omega),
                name=f"buf[{arc.value}<-{arc.dst}]",
            )
        if buffer_cutoff is not None and buffers:
            model.add_constraint(
                {b: 1.0 for b in buffers.values()},
                Sense.LE,
                float(buffer_cutoff),
                name="buffer-cutoff",
            )
        # Primary objective: total buffers.  Secondary (lexicographic via a
        # weight too small to trade against one buffer): total lifetime —
        # among buffer-optimal schedules prefer the register-friendly ones
        # rather than ones that stretch every value to exactly II cycles.
        objective: Dict[Var, float] = {b: 1.0 for b in buffers.values()}
        lifetime_tiebreak(objective)
        model.set_objective(objective, minimize=True)
    else:
        # Resource-constrained stage: compact schedules help the search and
        # shorten lifetimes without constraining feasibility.
        objective: Dict[Var, float] = {}
        for (op, t), var in assign.items():
            objective[var] = float(t)
        model.set_objective(objective, minimize=True)

    return ScheduleFormulation(
        model=model, loop=loop, ii=ii, horizon=horizon, assign=assign, buffers=buffers
    )


def build_formulation(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    stages: Optional[int] = None,
    minimize_buffers: bool = False,
    buffer_cutoff: Optional[int] = None,
    minimize_overhead: bool = False,
    overhead_cutoff: Optional[int] = None,
) -> ScheduleFormulation:
    """Build the modulo scheduling ILP, with an optional secondary objective.

    ``minimize_buffers`` reproduces MOST's adjusted objective (§3.3);
    ``minimize_overhead`` implements the paper's closing suggestion — "an
    ILP formulation ... that optimizes loop overhead more directly than by
    optimizing register usage" (§5) — by minimising the pipeline's stage
    count ``S >= (sigma_i + 1) / II``, which is what fill/drain cost scales
    with.  ``buffer_cutoff``/``overhead_cutoff`` add sound upper bounds
    from an already-known feasible schedule, a large help to the
    branch-and-bound.
    """
    neutral = build_modulo_formulation(loop, machine, ii, stages=stages)
    return model_from_formulation(
        neutral,
        loop,
        minimize_buffers=minimize_buffers,
        buffer_cutoff=buffer_cutoff,
        minimize_overhead=minimize_overhead,
        overhead_cutoff=overhead_cutoff,
    )
