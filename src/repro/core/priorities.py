"""Scheduling priority-list heuristics (Section 2.7).

The MIPSpro pipeliner derives its four production orders from two
fundamental orderings:

* *Folded depth-first*: depth-first from the roots (stores) backward to the
  leaves, except that hard-to-schedule operations (unpipelined ones) and
  large strongly connected components are "folded" into virtual roots from
  which the search proceeds outward in both directions.
* *Heights*: decreasing maximum latency-weighted path length to a root.

modified by *reversal* and/or a *final memory sort* that pulls stores with
no successors and loads with no predecessors to the end of the list:

    FDMS   folded depth-first + memory sort
    FDNMS  folded depth-first, no memory sort
    HMS    heights + memory sort
    RHMS   reversed heights + memory sort
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription

PRODUCTION_ORDER_NAMES: Tuple[str, ...] = ("FDMS", "FDNMS", "HMS", "RHMS")

# Strongly connected components at least this large are folded.
LARGE_SCC_SIZE = 3


def _has_flow_cycle(loop: Loop, scc) -> bool:
    """Does the component's cycle involve a register (flow) dependence?

    Components held together purely by memory serialisation arcs (e.g. a
    spill store and its restores) are not genuine recurrences and are not
    worth folding to the head of the list.
    """
    from ..ir.ddg import DepKind

    members = set(scc)
    return any(
        arc.kind is DepKind.FLOW and arc.dst in members
        for op in scc
        for arc in loop.ddg.succs(op)
    )


def folded_depth_first(loop: Loop, machine: MachineDescription) -> List[int]:
    """Folded depth-first ordering.

    Without fold points this is a depth-first walk from the stores back
    toward the loads.  Fold points (unpipelined operations; members of
    large SCCs) are emitted first, then the walk proceeds outward from
    them — backward to the leaves, then forward to the roots — before the
    remaining operations are picked up from the true roots.
    """
    ddg = loop.ddg
    visited = [False] * loop.n_ops
    order: List[int] = []

    def emit(op: int) -> None:
        if not visited[op]:
            visited[op] = True
            order.append(op)

    def walk_back(op: int) -> None:
        """Emit ``op`` then its unvisited predecessors, depth first."""
        stack = [op]
        while stack:
            node = stack.pop()
            if visited[node]:
                continue
            emit(node)
            preds = sorted({a.src for a in ddg.preds(node) if a.src != node}, reverse=True)
            stack.extend(p for p in preds if not visited[p])

    def walk_fwd(op: int) -> None:
        stack = [op]
        while stack:
            node = stack.pop()
            if visited[node]:
                continue
            emit(node)
            succs = sorted({a.dst for a in ddg.succs(node) if a.dst != node}, reverse=True)
            stack.extend(s for s in succs if not visited[s])

    fold_points: List[int] = []
    folded_sccs = [
        scc
        for scc in ddg.nontrivial_sccs()
        if len(scc) >= LARGE_SCC_SIZE and _has_flow_cycle(loop, scc)
    ]
    for scc in folded_sccs:
        fold_points.extend(scc)
    for op in range(loop.n_ops):
        if not machine.is_fully_pipelined(loop.ops[op].opclass) and op not in fold_points:
            fold_points.append(op)

    for op in fold_points:
        emit(op)
    for op in list(fold_points):
        for arc in ddg.preds(op):
            if arc.src != op:
                walk_back(arc.src)
        for arc in ddg.succs(op):
            if arc.dst != op:
                walk_fwd(arc.dst)
    for root in ddg.roots():
        walk_back(root)
    for op in range(loop.n_ops):
        walk_back(op)
    return order


def heights_order(loop: Loop) -> List[int]:
    """Decreasing data-precedence-graph height (ties broken by position)."""
    heights = loop.ddg.height_map()
    return sorted(range(loop.n_ops), key=lambda op: (-heights[op], op))


def memory_sort(loop: Loop, order: Sequence[int]) -> List[int]:
    """Final memory sort: move boundary memory operations to the end.

    "Pulling stores with no successors and loads with no predecessors to
    the end of the list" — these have full freedom of placement, so
    considering them last lets the scarce dual memory ports be assigned
    after the constrained operations are fixed.
    """
    ddg = loop.ddg

    def is_boundary_memory(op: int) -> bool:
        operation = loop.ops[op]
        if not operation.is_memory:
            return False
        if operation.mem.is_store:
            return all(a.dst == op for a in ddg.succs(op))
        return all(a.src == op for a in ddg.preds(op))

    front = [op for op in order if not is_boundary_memory(op)]
    back = [op for op in order if is_boundary_memory(op)]
    return front + back


def production_orders(
    loop: Loop, machine: MachineDescription
) -> Dict[str, List[int]]:
    """The four production priority lists, keyed by name, in trial order."""
    fd = folded_depth_first(loop, machine)
    hs = heights_order(loop)
    return {
        "FDMS": memory_sort(loop, fd),
        "FDNMS": list(fd),
        "HMS": memory_sort(loop, hs),
        "RHMS": memory_sort(loop, list(reversed(hs))),
    }


def order_by_name(loop: Loop, machine: MachineDescription, name: str) -> List[int]:
    orders = production_orders(loop, machine)
    try:
        return orders[name]
    except KeyError:
        raise ValueError(
            f"unknown priority order {name!r}; choose from {sorted(orders)}"
        ) from None
