"""The complete SGI-style heuristic software pipeliner (Section 2).

Composition, mirroring the MIPSpro pipeliner:

* per candidate loop, MinII/MaxII bound a two-phase binary II search;
* at each II, a branch-and-bound scheduler with catch-point pruning packs
  the operations, driven by up to four priority-list heuristics (FDMS,
  FDNMS, HMS, RHMS) — subsequent heuristics are tried only when earlier
  ones do not already achieve MinII;
* memory-bank pairing is woven into the scheduling search;
* raw schedules get a pipestage-adjustment postpass, then modulo renaming
  and Chaitin-Briggs register allocation;
* allocation failures trigger exponentially growing spill rounds (1, 2,
  4, ... values), after which scheduling switches to a simple binary II
  search.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000
from ..obs import get_recorder
from ..regalloc.coloring import AllocationResult, allocate_schedule
from .bankpolish import polish_bank_schedule
from .bnb import BnBConfig, modulo_schedule_bnb, prepare_attempt
from .iisearch import search_ii
from .membank import BankPairer
from .minii import min_ii as compute_min_ii
from .pipestage import adjust_pipestages
from .priorities import PRODUCTION_ORDER_NAMES, production_orders
from .sched import Schedule, SchedulingStats
from .spill import MAX_SPILL_ROUNDS, choose_spill_candidates, insert_spills


@dataclass
class PipelinerOptions:
    """Configuration of the heuristic pipeliner (defaults = production)."""

    orders: Tuple[str, ...] = PRODUCTION_ORDER_NAMES
    enable_membank: bool = True
    strict_pairing: bool = True
    bnb: BnBConfig = field(default_factory=BnBConfig)
    max_spill_rounds: int = MAX_SPILL_ROUNDS
    ii_cap_factor: int = 2
    linear_ii_search: bool = False  # ablation of the binary II search
    # Consult the certified refined II lower bound (repro.analyze) before
    # each scheduling pass, skipping statically-infeasible IIs in the
    # search.  Outcome-identical: disabling it changes search effort only.
    static_bounds: bool = True

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelinerOptions":
        """Build options from a JSON-style mapping (the repro.exec cell form).

        ``orders`` may be a list; ``bnb`` a mapping of ``BnBConfig`` fields.
        """
        data = dict(data)
        if "orders" in data:
            data["orders"] = tuple(data["orders"])
        if "bnb" in data and isinstance(data["bnb"], Mapping):
            data["bnb"] = BnBConfig(**data["bnb"])
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown PipelinerOptions keys: {', '.join(unknown)}")
        return cls(**data)


@dataclass
class PipelineResult:
    """Outcome of pipelining one loop."""

    success: bool
    schedule: Optional[Schedule]
    allocation: Optional[AllocationResult]
    loop: Loop  # the loop actually scheduled (with spill code, if any)
    original: Loop
    min_ii: int  # MinII of the original loop body
    order_name: str = ""
    spill_rounds: int = 0
    spilled: List[str] = field(default_factory=list)
    stats: SchedulingStats = field(default_factory=SchedulingStats)

    @property
    def ii(self) -> Optional[int]:
        return self.schedule.ii if self.schedule is not None else None


def _maybe_verify(result, machine: MachineDescription, verify: Optional[bool]):
    """Run the independent checkers over a driver result when enabled.

    Shared by all three pipeliners.  ``verify=None`` defers to the process
    default (:func:`repro.verify.set_default_verify`); imports are lazy
    because ``repro.verify`` imports the drivers for its corpus sweeps.
    """
    from ..verify import resolve_verify
    from ..verify.api import enforce_verified

    if resolve_verify(verify):
        enforce_verified(result, machine)
    return result


def pipeline_loop(
    loop: Loop,
    machine: Optional[MachineDescription] = None,
    options: Optional[PipelinerOptions] = None,
    verify: Optional[bool] = None,
) -> PipelineResult:
    """Software-pipeline ``loop``: returns the best allocated schedule found.

    The II search, spilling and register allocation run with memory-bank
    pairing out of the picture; when the bank heuristics are enabled, a
    final pass re-schedules the winning loop at the same II with pairing
    and risky-grouping avoidance, keeping the paired schedule only when it
    still register-allocates (Section 2.9: the exploration of other
    schedules at the same II with provably better stalling behaviour).

    ``verify=True`` (or a true process default, see
    :func:`repro.verify.set_default_verify`) cross-checks every successful
    result with the independent ``repro.verify`` analyzers and raises
    :class:`repro.verify.VerificationError` on any ERROR diagnostic.
    """
    machine = machine if machine is not None else r8000()
    options = options or PipelinerOptions()
    stats = SchedulingStats()
    original = loop
    original_min_ii = compute_min_ii(loop, machine)

    rec = get_recorder()
    current = loop
    spilled_total: List[str] = []
    spill_budget = 1
    rounds_done = 0
    for spill_round in range(options.max_spill_rounds + 1):
        rounds_done = spill_round
        with rec.span("sgi.round", loop=current.name, spill_round=spill_round):
            outcome = _schedule_and_allocate(
                current, machine, options, stats, after_spill=spill_round > 0
            )
        if outcome.best is not None:
            schedule, allocation, order_name = outcome.best
            if options.enable_membank:
                paired = _repair_bank_grouping(
                    current, machine, schedule.ii, options, stats, outcome.best
                )
                if paired is not None:
                    schedule, allocation, order_name = paired
            return _maybe_verify(
                PipelineResult(
                    success=True,
                    schedule=schedule,
                    allocation=allocation,
                    loop=current,
                    original=original,
                    min_ii=original_min_ii,
                    order_name=order_name,
                    spill_rounds=spill_round,
                    spilled=spilled_total,
                    stats=stats,
                ),
                machine,
                verify,
            )
        if outcome.best_failed is None:
            break  # could not even find a schedule: give up entirely
        failed_schedule, failed_alloc, _ = outcome.best_failed
        # The exponential budget (1, 2, 4, ...) never needs to exceed the
        # number of values that actually failed to colour.
        distinct_failed = len({lr.value for lr in failed_alloc.uncolored})
        candidates = choose_spill_candidates(
            failed_alloc, current, set(spilled_total),
            min(spill_budget, max(1, distinct_failed)),
        )
        if not candidates or spill_round == options.max_spill_rounds:
            break
        rec.counter("spill.rounds")
        current = insert_spills(current, machine, candidates)
        spilled_total.extend(candidates)
        spill_budget *= 2
    return PipelineResult(
        success=False,
        schedule=None,
        allocation=None,
        loop=current,
        original=original,
        min_ii=original_min_ii,
        spill_rounds=rounds_done,
        spilled=spilled_total,
        stats=stats,
    )


@dataclass
class _RoundOutcome:
    best: Optional[Tuple[Schedule, AllocationResult, str]] = None
    best_failed: Optional[Tuple[Schedule, AllocationResult, str]] = None


def _schedule_and_allocate(
    loop: Loop,
    machine: MachineDescription,
    options: PipelinerOptions,
    stats: SchedulingStats,
    after_spill: bool,
) -> _RoundOutcome:
    """One scheduling pass: all priority orders at the best reachable II."""
    mii = compute_min_ii(loop, machine)
    maxii = options.ii_cap_factor * mii
    outcome = _RoundOutcome()
    orders = production_orders(loop, machine)
    rec = get_recorder()
    static_bound: Optional[int] = None
    if options.static_bounds:
        # Lazy import: repro.analyze builds on core's MinII machinery, so a
        # module-level import here would be circular.  Recomputed per spill
        # round — spill code changes the loop body and with it the bounds.
        from ..analyze.bounds import schedulable_bound

        static_bound = schedulable_bound(loop, machine, cap=maxii, base=mii)
        if rec.enabled and static_bound > mii:
            rec.event(
                "ii.static_bound", loop=loop.name, min_ii=mii, bound=static_bound
            )
    for order_name in options.orders:
        order = orders[order_name]
        with rec.span("sgi.order", loop=loop.name, order=order_name):
            found = search_ii(
                loop,
                machine,
                order,
                mii,
                maxii,
                config=options.bnb,
                simple_binary=after_spill,
                linear=options.linear_ii_search,
                stats=stats,
                static_bound=static_bound,
            )
        if not found.success:
            continue
        times = adjust_pipestages(loop, found.ii, found.times)
        schedule = Schedule(
            loop=loop, machine=machine, ii=found.ii, times=times,
            producer=f"sgi/{order_name}",
        )
        allocation = allocate_schedule(schedule, machine)
        entry = (schedule, allocation, order_name)
        if allocation.success:
            if outcome.best is None or schedule.ii < outcome.best[0].ii:
                outcome.best = entry
            if schedule.ii == mii:
                return outcome  # cannot do better; common fast path
        else:
            if outcome.best_failed is None or _failure_rank(entry) < _failure_rank(
                outcome.best_failed
            ):
                outcome.best_failed = entry
    return outcome


def _repair_bank_grouping(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    options: PipelinerOptions,
    stats: SchedulingStats,
    base: Tuple[Schedule, AllocationResult, str],
) -> Optional[Tuple[Schedule, AllocationResult, str]]:
    """The Section 2.9 same-II exploration of better-stalling schedules.

    Candidates, most bank-friendly first: (1) full re-schedules with bank
    pairing and risky-grouping avoidance per priority order, (2) the
    already-won schedule, (3) the other orders' unpaired schedules.  Every
    candidate is locally polished (memory ops relocated within dependence
    slack out of risky cycles — stage differences included) and kept only
    if it still register-allocates.
    """
    import time as _time

    orders = production_orders(loop, machine)
    candidates: List[Tuple[Schedule, str]] = []

    def reschedule(order_name: str, with_pairer: bool) -> None:
        order = orders[order_name]
        pairer = (
            BankPairer(loop, ii, order, strict=options.strict_pairing)
            if with_pairer
            else None
        )
        prepare_attempt(loop, machine, ii, order)
        start = _time.perf_counter()
        result = modulo_schedule_bnb(loop, machine, ii, order, options.bnb, pairer)
        stats.attempts += 1
        stats.placements += result.placements
        stats.backtracks += result.backtracks
        stats.seconds += _time.perf_counter() - start
        if result.success:
            times = adjust_pipestages(loop, ii, result.times)
            suffix = "+bank" if with_pairer else ""
            candidates.append(
                (
                    Schedule(
                        loop=loop, machine=machine, ii=ii, times=times,
                        producer=f"sgi/{order_name}{suffix}",
                    ),
                    order_name,
                )
            )

    base_schedule, base_allocation, base_order = base
    for order_name in options.orders:
        reschedule(order_name, with_pairer=True)
    candidates.append((base_schedule, base_order))
    for order_name in options.orders:
        if order_name != base_order:
            reschedule(order_name, with_pairer=False)

    # Weigh stall exposure against pipeline overhead in cycles: a risky
    # same-cycle pair can stall roughly every iteration, while fill/drain
    # overhead is paid once per loop entry — short-trip loops should not
    # buy bank safety with extra pipestages (Section 4.6's overhead
    # argument applied to Section 2.9).  Both the raw and the polished
    # form of every candidate compete.
    from ..pipeline.overhead import pipeline_overhead

    best: Optional[Tuple[Tuple[float, int], Schedule, AllocationResult, str]] = None
    for candidate, order_name in candidates:
        pairer = BankPairer(loop, ii, orders[order_name], strict=options.strict_pairing)
        forms = [candidate]
        polished = polish_bank_schedule(candidate, machine, pairer)
        if polished is not None:
            forms.append(polished)
        for form in forms:
            allocation = (
                base_allocation
                if form is base_schedule
                else allocate_schedule(form, machine)
            )
            if not allocation.success:
                continue
            risk = _residual_risk(form, pairer)
            overhead = pipeline_overhead(form, allocation, machine).total
            cost = overhead + 0.5 * risk * loop.trip_count
            rank = (cost, risk)
            if best is None or rank < best[0]:
                best = (rank, form, allocation, order_name)
    if best is None:
        return None
    return best[1], best[2], best[3]


def _residual_risk(schedule: Schedule, pairer: BankPairer) -> int:
    """Count of same-cycle reference pairs without a proven opposite bank."""
    by_slot: Dict[int, List[int]] = {}
    for op in schedule.loop.memory_ops():
        by_slot.setdefault(schedule.slot(op.index), []).append(op.index)
    risk = 0
    for ops in by_slot.values():
        for i, a in enumerate(ops):
            for b in ops[i + 1 :]:
                if (
                    pairer.runtime_relative_bank(
                        a, schedule.time(a), b, schedule.time(b)
                    )
                    != 1
                ):
                    risk += 1
    return risk


def _failure_rank(entry: Tuple[Schedule, AllocationResult, str]) -> Tuple[int, int]:
    schedule, allocation, _ = entry
    return (schedule.ii, len(allocation.uncolored))
