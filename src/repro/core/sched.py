"""Schedule representation and validity checking.

A modulo schedule assigns each operation an issue cycle ``t(op)`` for the
first iteration; iteration ``n`` issues the operation at ``t(op) + n * II``.
The *modulo slot* ``t(op) mod II`` determines steady-state resource usage;
``t(op) // II`` is the operation's *pipestage*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription


@dataclass
class Schedule:
    """A completed modulo schedule for ``loop`` at initiation interval ``ii``."""

    loop: Loop
    machine: MachineDescription
    ii: int
    times: Dict[int, int]
    # Which scheduler / priority order produced it, for reporting.
    producer: str = ""

    def __post_init__(self) -> None:
        missing = set(range(self.loop.n_ops)) - set(self.times)
        if missing:
            raise ValueError(f"schedule for {self.loop.name!r} misses ops {sorted(missing)}")
        self.normalize()

    def normalize(self) -> None:
        """Shift times so the earliest operation issues at cycle 0."""
        if not self.times:
            return
        low = min(self.times.values())
        if low:
            self.times = {op: t - low for op, t in self.times.items()}

    # ------------------------------------------------------------------
    def time(self, op: int) -> int:
        return self.times[op]

    def slot(self, op: int) -> int:
        return self.times[op] % self.ii

    def stage(self, op: int) -> int:
        return self.times[op] // self.ii

    @property
    def n_stages(self) -> int:
        """Number of pipestages; the steady state overlaps this many iterations."""
        return 1 + max(self.stage(op) for op in self.times)

    @property
    def span(self) -> int:
        """Cycles from first to one past last issue of a single iteration."""
        return 1 + max(self.times.values())

    def ops_at_slot(self, slot: int) -> List[int]:
        return sorted(op for op in self.times if self.slot(op) == slot)

    # ------------------------------------------------------------------
    def _check(self):
        """This schedule's legality report from the independent checker."""
        # Imported here: repro.verify must not be a load-time dependency of
        # the schedulers it is checking.
        from ..verify.schedcheck import check_schedule

        return check_schedule(
            self.loop, self.machine, self.ii, self.times, audit_min_ii=False
        )

    def dependence_violations(self) -> List[str]:
        """All dependence constraints this schedule violates (empty = valid).

        Each entry carries the rule id and the op ids involved, symmetric
        with :meth:`resource_violations`.
        """
        return [d.formatted() for d in self._check().by_rule("SCHED001")]

    def resource_violations(self) -> List[str]:
        """All modulo resource conflicts (empty = valid).

        Each entry carries the rule id and *every* op contributing to the
        oversubscribed slot — not just the one placed last.
        """
        return [d.formatted() for d in self._check().by_rule("SCHED002")]

    def validate(self) -> None:
        """Raise ValueError if the schedule violates any constraint.

        Delegates to the independent :mod:`repro.verify` schedule checker;
        the raised :class:`repro.verify.VerificationError` is a
        ``ValueError`` subclass, so existing callers are unaffected.
        """
        self._check().raise_if_errors()

    # ------------------------------------------------------------------
    def buffer_count(self) -> int:
        """Number of II-cycle buffers needed by flow values (MOST's objective).

        Each flow arc keeps its value alive for ``t(dst) - t(src) +
        II * omega`` cycles after production; in buffer terms that is
        ``ceil(lifetime / II)`` buffers, and a value needs the maximum over
        its consumers.  Minimising total buffers shrinks the iteration
        overlap and hence fill/drain code (Section 3.3, adjustment 2).
        """
        per_value: Dict[Tuple[int, str], int] = {}
        from ..ir.ddg import DepKind

        for arc in self.loop.ddg.arcs:
            if arc.kind is not DepKind.FLOW:
                continue
            lifetime = self.times[arc.dst] - self.times[arc.src] + self.ii * arc.omega
            buffers = max(1, math.ceil(max(lifetime, 1) / self.ii))
            key = (arc.src, arc.value)
            per_value[key] = max(per_value.get(key, 0), buffers)
        return sum(per_value.values())

    def to_dict(self) -> Dict:
        """JSON-serialisable form (the loop itself is referenced by name)."""
        return {
            "loop": self.loop.name,
            "machine": self.machine.name,
            "ii": self.ii,
            "times": {str(op): t for op, t in self.times.items()},
            "producer": self.producer,
        }

    @classmethod
    def from_dict(cls, data: Dict, loop, machine) -> "Schedule":
        """Rebuild a schedule against the same loop and machine.

        The caller supplies the loop/machine objects; names are checked so
        a schedule cannot silently attach to the wrong loop.
        """
        if data["loop"] != loop.name:
            raise ValueError(f"schedule is for loop {data['loop']!r}, not {loop.name!r}")
        if data["machine"] != machine.name:
            raise ValueError(
                f"schedule is for machine {data['machine']!r}, not {machine.name!r}"
            )
        return cls(
            loop=loop,
            machine=machine,
            ii=int(data["ii"]),
            times={int(op): int(t) for op, t in data["times"].items()},
            producer=data.get("producer", ""),
        )

    def __str__(self) -> str:
        lines = [
            f"schedule {self.loop.name!r} II={self.ii} stages={self.n_stages}"
            + (f" via {self.producer}" if self.producer else "")
        ]
        for slot in range(self.ii):
            ops = self.ops_at_slot(slot)
            desc = ", ".join(
                f"{self.loop.ops[o].opcode}#{o}@s{self.stage(o)}" for o in ops
            )
            lines.append(f"  slot {slot:3d}: {desc}")
        return "\n".join(lines)


@dataclass
class SchedulingStats:
    """Search-effort counters, for the compile-speed comparisons (§4.7)."""

    attempts: int = 0  # (II, priority order) scheduling attempts
    placements: int = 0  # operation placements tried
    backtracks: int = 0
    evictions: int = 0  # placed ops ejected to make room (Rau94)
    seconds: float = 0.0

    def merge(self, other: "SchedulingStats") -> None:
        self.attempts += other.attempts
        self.placements += other.placements
        self.backtracks += other.backtracks
        self.evictions += other.evictions
        self.seconds += other.seconds
