"""Longest-path distance tables within strongly connected components.

Section 2.4: "A longest path table is kept and used to determine the number
of cycles by which two members [of a strongly connected component] must
precede or follow each other."  At a candidate II, arc weights are
``latency - II * omega``; ``dist(i, j)`` is the maximum weight of any path
from ``i`` to ``j`` using only intra-component arcs, so any legal schedule
satisfies ``t(j) >= t(i) + dist(i, j)``.

The distance at II is an affine function of II along any one path:
``L - II * W`` where ``L`` sums latencies and ``W`` sums omegas.  The
maximum over paths is therefore the upper envelope of a set of lines, and
the *path structure* — the Pareto frontier of ``(L, W)`` pairs per node
pair — does not depend on II at all.  :class:`SccDistanceTables` exploits
this: the frontier is computed once per dependence graph (one profile
Floyd–Warshall mirroring the numeric recursion exactly), cached on the
DDG, and re-evaluated per candidate II as a cheap max over a handful of
lines.  Re-running the II search, other priority orders, or other
schedulers against the same loop all hit the same cache.

``REPRO_LEGACY_HOTPATHS=1`` (see :mod:`repro.machine.resources`) reverts
to the original per-II Floyd–Warshall, which is also what the equivalence
tests compare against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..machine.resources import LEGACY_HOTPATHS

NEG_INF = float("-inf")

#: Pareto frontiers larger than this abandon the parametric form for the
#: affected component and fall back to per-II Floyd–Warshall (deterministic
#: either way; frontiers this size have never been observed on real loops).
PROFILE_CAP = 96

# One (L, W) pair per Pareto-optimal path: distance at II is L - II * W.
_Profile = Tuple[Tuple[int, int], ...]


def _merge_profiles(base: List[Tuple[int, int]], extra: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Pareto frontier of ``base + extra`` under (max L, min W).

    A pair ``(L, W)`` is dominated by ``(L', W')`` when ``L' >= L`` and
    ``W' <= W``: the dominating line is at least as high for every II >= 0,
    so dropping the dominated pair never changes the evaluated maximum.
    """
    merged = sorted(set(base) | set(extra))  # by W asc, then L asc
    frontier: List[Tuple[int, int]] = []
    best_l: Optional[int] = None
    # Walk W ascending: a pair survives only if its L strictly exceeds every
    # L seen at smaller-or-equal W; ties on W keep only the largest L.
    for w, l in merged:
        if best_l is not None and l <= best_l:
            continue
        if frontier and frontier[-1][0] == w:
            frontier[-1] = (w, l)
        else:
            frontier.append((w, l))
        best_l = l
    return frontier


class _ParametricScc:
    """Pareto path profiles for one SCC, II-independent."""

    __slots__ = ("profiles", "fallback")

    def __init__(self, profiles: Dict[Tuple[int, int], _Profile], fallback: bool):
        self.profiles = profiles
        self.fallback = fallback


class _DistanceMemo:
    """Per-DDG container: parametric profiles + per-II evaluated tables."""

    __slots__ = ("sccs", "evaluated")

    def __init__(self) -> None:
        self.sccs: Dict[int, _ParametricScc] = {}
        # ii -> (feasible, {scc_id: {(i, j): dist}})
        self.evaluated: Dict[int, Tuple[bool, Dict[int, Dict[Tuple[int, int], float]]]] = {}


class SccDistanceTables:
    """Per-SCC all-pairs longest-path tables at a fixed II."""

    def __init__(self, loop: Loop, ii: int, memo: Optional[bool] = None):
        self.loop = loop
        self.ii = ii
        if memo is None:
            memo = not LEGACY_HOTPATHS
        self._tables: Dict[int, Dict[Tuple[int, int], float]] = {}
        self._feasible = True
        if memo:
            self._feasible, self._tables = self._evaluate_memo()
        else:
            for scc in loop.ddg.nontrivial_sccs():
                scc_id = loop.ddg.scc_id(scc[0])
                table = self._floyd_warshall(scc)
                self._tables[scc_id] = table
                if any(table.get((v, v), NEG_INF) > 0 for v in scc):
                    self._feasible = False

    # ------------------------------------------------------------------
    # Memoized parametric path
    # ------------------------------------------------------------------
    @staticmethod
    def prime(loop: Loop) -> None:
        """Build (or reuse) the parametric path profiles for ``loop``.

        Called once at the head of an II search so every candidate II —
        and every later search over the same loop — evaluates the cached
        path structure instead of re-running Floyd–Warshall.  A no-op
        under ``REPRO_LEGACY_HOTPATHS``.
        """
        if not LEGACY_HOTPATHS:
            _distance_memo(loop.ddg, loop)

    def _evaluate_memo(self) -> Tuple[bool, Dict[int, Dict[Tuple[int, int], float]]]:
        memo = _distance_memo(self.loop.ddg, self.loop)
        cached = memo.evaluated.get(self.ii)
        if cached is not None:
            return cached
        ii = self.ii
        feasible = True
        tables: Dict[int, Dict[Tuple[int, int], float]] = {}
        for scc in self.loop.ddg.nontrivial_sccs():
            scc_id = self.loop.ddg.scc_id(scc[0])
            parametric = memo.sccs[scc_id]
            if parametric.fallback:
                table = self._floyd_warshall(scc)
            else:
                table = {
                    pair: max(l - ii * w for w, l in profile)
                    for pair, profile in parametric.profiles.items()
                }
            tables[scc_id] = table
            if any(table.get((v, v), NEG_INF) > 0 for v in scc):
                feasible = False
        memo.evaluated[ii] = (feasible, tables)
        return feasible, tables

    def _floyd_warshall(self, members: Tuple[int, ...]) -> Dict[Tuple[int, int], float]:
        ddg = self.loop.ddg
        scc_id = ddg.scc_id(members[0])
        dist: Dict[Tuple[int, int], float] = {}
        for u in members:
            for arc in ddg.succs(u):
                if ddg.scc_id(arc.dst) != scc_id:
                    continue
                w = arc.latency - self.ii * arc.omega
                key = (u, arc.dst)
                if w > dist.get(key, NEG_INF):
                    dist[key] = w
        for k in members:
            for i in members:
                ik = dist.get((i, k), NEG_INF)
                if ik is NEG_INF:
                    continue
                for j in members:
                    kj = dist.get((k, j), NEG_INF)
                    if kj is NEG_INF:
                        continue
                    if ik + kj > dist.get((i, j), NEG_INF):
                        dist[(i, j)] = ik + kj
        return dist

    @property
    def feasible(self) -> bool:
        """False when some recurrence cannot meet this II (positive cycle)."""
        return self._feasible

    def dist(self, src: int, dst: int) -> Optional[int]:
        """Longest path ``src -> dst`` within their common SCC, or None.

        None means no path: the pair imposes no precedence at this II.
        """
        scc_id = self.loop.ddg.scc_id(src)
        if self.loop.ddg.scc_id(dst) != scc_id:
            return None
        table = self._tables.get(scc_id)
        if table is None:
            return None
        value = table.get((src, dst))
        return None if value is None else int(value)


def _distance_memo(ddg: DDG, loop: Loop) -> _DistanceMemo:
    """The per-DDG :class:`_DistanceMemo`, built on first use.

    The DDG is immutable after construction, so caching on the instance is
    safe; everything scheduling the same loop object shares the profiles.
    """
    memo: Optional[_DistanceMemo] = getattr(ddg, "_distance_memo", None)
    if memo is None:
        memo = _DistanceMemo()
        for scc in ddg.nontrivial_sccs():
            scc_id = ddg.scc_id(scc[0])
            memo.sccs[scc_id] = _parametric_scc(ddg, scc, scc_id)
        ddg._distance_memo = memo  # type: ignore[attr-defined]
    return memo


def _parametric_scc(ddg: DDG, members: Tuple[int, ...], scc_id: int) -> _ParametricScc:
    """Profile Floyd–Warshall over one SCC.

    Mirrors :meth:`SccDistanceTables._floyd_warshall` line for line — same
    in-place update order, same reads — but carries Pareto frontiers of
    ``(W, L)`` pairs instead of numbers, so the numeric table at any II is
    exactly ``max(L - II * W)`` over each frontier.  (The in-place order
    matters when a component has positive cycles at small IIs: both
    recursions must consider the same walk set to stay bit-identical.)
    """
    prof: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for u in members:
        for arc in ddg.succs(u):
            if ddg.scc_id(arc.dst) != scc_id:
                continue
            key = (u, arc.dst)
            prof[key] = _merge_profiles(prof.get(key, []), [(arc.omega, arc.latency)])
    for k in members:
        for i in members:
            ik = prof.get((i, k))
            if not ik:
                continue
            for j in members:
                kj = prof.get((k, j))
                if not kj:
                    continue
                joined = [(w1 + w2, l1 + l2) for w1, l1 in ik for w2, l2 in kj]
                merged = _merge_profiles(prof.get((i, j), []), joined)
                if len(merged) > PROFILE_CAP:
                    return _ParametricScc({}, fallback=True)
                prof[(i, j)] = merged
    profiles = {pair: tuple(frontier) for pair, frontier in prof.items()}
    return _ParametricScc(profiles, fallback=False)
