"""Longest-path distance tables within strongly connected components.

Section 2.4: "A longest path table is kept and used to determine the number
of cycles by which two members [of a strongly connected component] must
precede or follow each other."  At a candidate II, arc weights are
``latency - II * omega``; ``dist(i, j)`` is the maximum weight of any path
from ``i`` to ``j`` using only intra-component arcs, so any legal schedule
satisfies ``t(j) >= t(i) + dist(i, j)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.loop import Loop

NEG_INF = float("-inf")


class SccDistanceTables:
    """Per-SCC all-pairs longest-path tables at a fixed II."""

    def __init__(self, loop: Loop, ii: int):
        self.loop = loop
        self.ii = ii
        self._tables: Dict[int, Dict[Tuple[int, int], float]] = {}
        self._feasible = True
        for scc in loop.ddg.nontrivial_sccs():
            scc_id = loop.ddg.scc_id(scc[0])
            table = self._floyd_warshall(scc)
            self._tables[scc_id] = table
            if any(table.get((v, v), NEG_INF) > 0 for v in scc):
                self._feasible = False

    def _floyd_warshall(self, members: Tuple[int, ...]) -> Dict[Tuple[int, int], float]:
        ddg = self.loop.ddg
        scc_id = ddg.scc_id(members[0])
        dist: Dict[Tuple[int, int], float] = {}
        for u in members:
            for arc in ddg.succs(u):
                if ddg.scc_id(arc.dst) != scc_id:
                    continue
                w = arc.latency - self.ii * arc.omega
                key = (u, arc.dst)
                if w > dist.get(key, NEG_INF):
                    dist[key] = w
        for k in members:
            for i in members:
                ik = dist.get((i, k), NEG_INF)
                if ik is NEG_INF:
                    continue
                for j in members:
                    kj = dist.get((k, j), NEG_INF)
                    if kj is NEG_INF:
                        continue
                    if ik + kj > dist.get((i, j), NEG_INF):
                        dist[(i, j)] = ik + kj
        return dist

    @property
    def feasible(self) -> bool:
        """False when some recurrence cannot meet this II (positive cycle)."""
        return self._feasible

    def dist(self, src: int, dst: int) -> Optional[int]:
        """Longest path ``src -> dst`` within their common SCC, or None.

        None means no path: the pair imposes no precedence at this II.
        """
        scc_id = self.loop.ddg.scc_id(src)
        if self.loop.ddg.scc_id(dst) != scc_id:
            return None
        table = self._tables.get(scc_id)
        if table is None:
            return None
        value = table.get((src, dst))
        return None if value is None else int(value)
