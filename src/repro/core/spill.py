"""Spilling to alleviate register pressure (Section 2.8).

When a schedule cannot be register allocated, the pipeliner spills values
to memory and schedules again.  Candidates are ranked by the ratio of
cycles spanned to number of references — "the greater this ratio, the
greater the cost and smaller the benefit of keeping the value in a
register".  Spill counts grow exponentially across failures (1, 2, 4, ...),
capped at 8 failed passes (at most 255 spilled values).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.ddg import DDG, Dependence, DepKind
from ..ir.loop import Loop
from ..ir.operations import MemRef, OpClass, Operation
from ..machine.descriptions import MachineDescription
from ..obs import get_recorder
from ..regalloc.coloring import AllocationResult

SPILL_TAG = "spill"
MAX_SPILL_ROUNDS = 8


def choose_spill_candidates(
    alloc: AllocationResult,
    loop: Loop,
    already: Set[str],
    count: int,
    min_span: int = 10,
) -> List[str]:
    """The ``count`` best values to spill, by decreasing spill ratio.

    Loop-carried values and values created by earlier spill rounds are not
    candidates; nor are values whose lifetime is shorter than ``min_span``
    — the store/reload round-trip would outlive the range being freed.
    Loop invariants ARE candidates: they are reloaded before each use
    (restore-only, no store), freeing a whole-kernel register.
    """
    defs = loop.defs_of()
    seen: Dict[str, float] = {}
    for lr in alloc.renamed.ranges:
        if lr.carried:
            continue
        if lr.value in already:
            continue
        if not lr.is_invariant:
            if lr.value not in defs:
                continue
            if lr.span < min_span:
                continue
            if SPILL_TAG in loop.ops[defs[lr.value]].tags:
                continue
        ratio = lr.spill_ratio
        if ratio > seen.get(lr.value, float("-inf")):
            seen[lr.value] = ratio
    ranked = sorted(seen, key=lambda v: (-seen[v], v))
    return ranked[:count]


def insert_spills(loop: Loop, machine: MachineDescription, values: List[str]) -> Loop:
    """Rewrite the loop with spill stores after defs and restores before uses.

    Each spilled value gets a private spill *array* indexed by the loop
    counter (iteration ``n`` uses element ``n``), so a restore may be
    scheduled any number of pipestages after its store — a single reused
    cell would chain the restore to within II cycles of the store, which
    defeats spilling for exactly the long lifetimes that need it.  Every
    use gets its own restore load, which is what actually shortens the
    pressure-inducing live range.

    Loop invariants are spilled restore-only: their value already lives in
    memory, so each use just reloads it (a fixed cell, zero stride).
    """
    to_spill = set(values)
    defs = loop.defs_of()
    invariant_spills = set()
    for v in to_spill:
        if v in defs:
            continue
        if v in loop.live_in:
            invariant_spills.add(v)
        else:
            raise ValueError(f"cannot spill {v!r}: not defined in loop {loop.name!r}")

    new_ops: List[Operation] = []
    index_map: Dict[int, int] = {}
    # (user old index, spilled value) -> restore load new index
    restores: Dict[Tuple[int, str], int] = {}
    stores: Dict[str, int] = {}  # spilled value -> spill store new index
    fresh = 0

    def slot_base(v: str) -> str:
        return f"__spill_{v}"

    for op in loop.ops:
        spilled_srcs = sorted(s for s in set(op.srcs) if s in to_spill)
        renames: Dict[str, str] = {}
        for v in spilled_srcs:
            fresh += 1
            restored = f"{v}!r{fresh}"
            stride = 0 if v in invariant_spills else 8
            load = Operation(
                index=len(new_ops),
                opcode="load.spill",
                opclass=OpClass.LOAD,
                dests=(restored,),
                srcs=(),
                mem=MemRef(base=slot_base(v), offset=0, stride=stride, width=8),
                tags=frozenset({SPILL_TAG}),
            )
            restores[(op.index, v)] = load.index
            new_ops.append(load)
            renames[v] = restored
        new_index = len(new_ops)
        index_map[op.index] = new_index
        new_ops.append(
            Operation(
                index=new_index,
                opcode=op.opcode,
                opclass=op.opclass,
                dests=op.dests,
                srcs=tuple(renames.get(s, s) for s in op.srcs),
                mem=op.mem,
                tags=op.tags,
            )
        )
        for d in op.dests:
            if d in to_spill:
                store = Operation(
                    index=len(new_ops),
                    opcode="store.spill",
                    opclass=OpClass.STORE,
                    dests=(),
                    srcs=(d,),
                    mem=MemRef(base=slot_base(d), offset=0, stride=8, width=8, is_store=True),
                    tags=frozenset({SPILL_TAG}),
                )
                stores[d] = store.index
                new_ops.append(store)

    arcs: List[Dependence] = []
    for arc in loop.ddg.arcs:
        if arc.kind is DepKind.FLOW and arc.value in to_spill:
            continue  # replaced by spill plumbing below
        arcs.append(
            Dependence(
                src=index_map[arc.src],
                dst=index_map[arc.dst],
                latency=arc.latency,
                omega=arc.omega,
                kind=arc.kind,
                value=arc.value,
            )
        )
    load_latency = machine.latency(OpClass.LOAD)
    for v in sorted(to_spill):
        if v in invariant_spills:
            # Restore-only: just the load -> user flow arcs.
            for (user_old, value), load_new in restores.items():
                if value != v:
                    continue
                arcs.append(
                    Dependence(
                        src=load_new,
                        dst=index_map[user_old],
                        latency=load_latency,
                        omega=0,
                        kind=DepKind.FLOW,
                        value=new_ops[load_new].dest,
                    )
                )
            continue
        def_new = index_map[defs[v]]
        store_new = stores[v]
        def_op = new_ops[def_new]
        # def -> spill store (the value's only remaining register use).
        arcs.append(
            Dependence(
                src=def_new,
                dst=store_new,
                latency=machine.latency(def_op.opclass),
                omega=0,
                kind=DepKind.FLOW,
                value=v,
            )
        )
        for (user_old, value), load_new in restores.items():
            if value != v:
                continue
            user_new = index_map[user_old]
            restored = new_ops[load_new].dest
            arcs.append(
                Dependence(
                    src=load_new,
                    dst=user_new,
                    latency=load_latency,
                    omega=0,
                    kind=DepKind.FLOW,
                    value=restored,
                )
            )
            # store -> restore through the spill slot.
            arcs.append(
                Dependence(
                    src=store_new,
                    dst=load_new,
                    latency=machine.store_to_load_latency,
                    omega=0,
                    kind=DepKind.MEM,
                )
            )

    # The compiler lays out spill slots itself, so their double-word
    # parities are known: alternate them so spill traffic is pairable into
    # opposite banks (Section 2.9 applies to spill code too).
    known_parity = dict(loop.known_parity)
    for i, v in enumerate(sorted(to_spill)):
        known_parity.setdefault(slot_base(v), i % 2)
    new_loop = Loop(
        name=loop.name,
        ops=new_ops,
        ddg=DDG(len(new_ops), arcs),
        live_in=set(loop.live_in) - invariant_spills,
        live_out=set(loop.live_out),
        trip_count=loop.trip_count,
        weight=loop.weight,
        known_parity=known_parity,
    )
    new_loop.check_well_formed()
    rec = get_recorder()
    if rec.enabled:
        rec.counter("spill.values", len(to_spill))
        rec.counter("spill.ops_added", len(new_ops) - len(loop.ops))
        rec.event(
            "spill.insert",
            loop=loop.name,
            values=sorted(to_spill),
            restore_only=sorted(invariant_spills),
        )
    return new_loop
