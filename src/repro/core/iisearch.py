"""Two-phase II search (Section 2.3).

The search space of candidate IIs is explored with a binary rather than
linear search — no measurable impact on code quality but a dramatic impact
on compile speed.  Two phases:

1. *Exponential backoff*: try MinII, MinII+1, MinII+2, MinII+4, MinII+8...
   until a schedule is found or MaxII (= 2 * MinII, the compile-speed
   circuit breaker) is exceeded.  A success at II <= MinII+2 leaves no
   better II untried and is accepted outright.
2. *Binary search* between the largest backoff failure and the backoff
   success, under the (heuristic, empirically safe) assumption that
   schedulability is monotone in II.

After spilling, a simple binary search over [MinII, MaxII] is used instead
(Section 2.8).

Every candidate II tried is recorded — phase, outcome and search effort —
in :attr:`IISearchResult.attempted`, *including* on overall failure, so
the compile-speed analyses can see exactly which IIs each phase visited.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from ..obs import get_recorder
from .bnb import BnBConfig, BnBResult, modulo_schedule_bnb, prepare_attempt
from .distances import SccDistanceTables
from .membank import BankPairer
from .sched import SchedulingStats

PairerFactory = Callable[[int], Optional[BankPairer]]


@dataclass
class IIAttempt:
    """One candidate II tried during the search, with its outcome."""

    ii: int
    phase: str  # "linear" | "backoff" | "binary" | "simple"
    success: bool
    placements: int = 0
    backtracks: int = 0
    seconds: float = 0.0
    # True when the II was rejected by a certified static lower bound
    # (repro.analyze) without running the B&B scheduler at all.
    pruned: bool = False


@dataclass
class IISearchResult:
    ii: Optional[int]
    times: Optional[Dict[int, int]]
    attempts: int = 0
    # Every II tried, in the order tried, whatever the overall outcome.
    attempted: List[IIAttempt] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.times is not None


def _attempt(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    priority: Sequence[int],
    config: BnBConfig,
    pairer_factory: Optional[PairerFactory],
    stats: Optional[SchedulingStats],
) -> BnBResult:
    pairer = pairer_factory(ii) if pairer_factory is not None else None
    # Loop/machine analysis (distance-derived plan, table lowering) is
    # hoisted out of the timed window; only the search itself is timed.
    prepare_attempt(loop, machine, ii, priority)
    start = _time.perf_counter()
    result = modulo_schedule_bnb(loop, machine, ii, priority, config, pairer)
    result.seconds = _time.perf_counter() - start
    if stats is not None:
        stats.attempts += 1
        stats.placements += result.placements
        stats.backtracks += result.backtracks
        stats.seconds += result.seconds
    return result


def search_ii(
    loop: Loop,
    machine: MachineDescription,
    priority: Sequence[int],
    min_ii: int,
    max_ii: int,
    config: Optional[BnBConfig] = None,
    pairer_factory: Optional[PairerFactory] = None,
    simple_binary: bool = False,
    linear: bool = False,
    stats: Optional[SchedulingStats] = None,
    static_bound: Optional[int] = None,
) -> IISearchResult:
    """Find the smallest schedulable II in [min_ii, max_ii] for one priority.

    ``linear=True`` selects the naive linear sweep (for the ablation bench
    of the binary-search design choice); ``simple_binary=True`` selects the
    plain binary search used after spills are introduced.

    ``static_bound`` is a certified II lower bound (:mod:`repro.analyze`):
    candidate IIs below it are marked failed *without* invoking the B&B
    scheduler.  The pruning is outcome-identical — the search visits the
    same II sequence and returns the same result, it just skips provably
    futile scheduling attempts (counted under ``ii.static_prunes``).  A
    bound above ``max_ii`` certifies the loop unschedulable under the
    circuit breaker and short-circuits the whole search.
    """
    config = config or BnBConfig()
    attempted: List[IIAttempt] = []
    rec = get_recorder()
    # Build the II-independent longest-path structure once, up front: every
    # candidate II below evaluates the cached Pareto profiles instead of
    # re-running Floyd–Warshall (repeat searches over the same loop — other
    # priority orders, post-spill re-searches — reuse it too).
    SccDistanceTables.prime(loop)

    def try_ii(ii: int, phase: str) -> Optional[Dict[int, int]]:
        if static_bound is not None and ii < static_bound:
            attempted.append(IIAttempt(ii=ii, phase=phase, success=False, pruned=True))
            if rec.enabled:
                rec.counter("ii.static_prunes")
                rec.event(
                    "ii.attempt",
                    loop=loop.name,
                    ii=ii,
                    phase=phase,
                    success=False,
                    pruned=True,
                    static_bound=static_bound,
                )
            return None
        result = _attempt(loop, machine, ii, priority, config, pairer_factory, stats)
        attempted.append(
            IIAttempt(
                ii=ii,
                phase=phase,
                success=result.success,
                placements=result.placements,
                backtracks=result.backtracks,
                seconds=result.seconds,
            )
        )
        if rec.enabled:
            rec.counter("ii.attempts")
            rec.event(
                "ii.attempt",
                loop=loop.name,
                ii=ii,
                phase=phase,
                success=result.success,
                placements=result.placements,
                backtracks=result.backtracks,
            )
        return result.times

    def done(ii: Optional[int], times: Optional[Dict[int, int]]) -> IISearchResult:
        return IISearchResult(ii, times, len(attempted), attempted)

    mode = "linear" if linear else ("simple" if simple_binary else "two-phase")
    with rec.span("ii.search", loop=loop.name, min_ii=min_ii, max_ii=max_ii, mode=mode):
        if min_ii > max_ii or (static_bound is not None and static_bound > max_ii):
            # Nothing in [min_ii, max_ii] can work — either the window is
            # empty or a certificate proves every II in it infeasible:
            # a clean "unschedulable under the circuit breaker" result.
            if rec.enabled and static_bound is not None and static_bound > max_ii:
                rec.counter("ii.static_unschedulable")
                rec.event(
                    "ii.static_unschedulable",
                    loop=loop.name,
                    static_bound=static_bound,
                    max_ii=max_ii,
                )
            return done(None, None)
        if linear:
            for ii in range(min_ii, max_ii + 1):
                times = try_ii(ii, "linear")
                if times is not None:
                    return done(ii, times)
            return done(None, None)

        if simple_binary:
            return _simple_binary(min_ii, max_ii, try_ii, done)

        # Phase 1: exponential backoff from MinII.
        tried_and_failed: List[int] = []
        found_ii: Optional[int] = None
        found_times: Optional[Dict[int, int]] = None
        delta = 0
        while True:
            ii = min_ii + delta
            if ii > max_ii:
                break
            times = try_ii(ii, "backoff")
            if times is not None:
                found_ii, found_times = ii, times
                break
            tried_and_failed.append(ii)
            delta = 1 if delta == 0 else delta * 2
        if found_times is None:
            return done(None, None)
        if found_ii <= min_ii + 2:
            return done(found_ii, found_times)

        # Phase 2: binary search between the largest failure and the success.
        lo = max(tried_and_failed) if tried_and_failed else min_ii - 1
        hi = found_ii
        while hi - lo > 1:
            mid = (lo + hi) // 2
            times = try_ii(mid, "binary")
            if times is not None:
                hi, found_times = mid, times
            else:
                lo = mid
        return done(hi, found_times)


def _simple_binary(min_ii: int, max_ii: int, try_ii, done) -> IISearchResult:
    times = try_ii(max_ii, "simple")
    if times is None:
        return done(None, None)
    lo, hi = min_ii, max_ii
    best = times
    while lo < hi:
        mid = (lo + hi) // 2
        times = try_ii(mid, "simple")
        if times is not None:
            hi, best = mid, times
        else:
            lo = mid + 1
    return done(hi, best)
