"""The SGI-style heuristic modulo scheduler."""

from .bnb import BnBConfig, BnBResult, modulo_schedule_bnb
from .driver import PipelineResult, PipelinerOptions, pipeline_loop
from .iisearch import IISearchResult, search_ii
from .membank import BankPairer
from .minii import max_ii, min_ii, rec_mii, res_mii
from .pipestage import adjust_pipestages
from .priorities import PRODUCTION_ORDER_NAMES, order_by_name, production_orders
from .sched import Schedule, SchedulingStats
from .spill import choose_spill_candidates, insert_spills

__all__ = [
    "BankPairer",
    "BnBConfig",
    "BnBResult",
    "IISearchResult",
    "PRODUCTION_ORDER_NAMES",
    "PipelineResult",
    "PipelinerOptions",
    "Schedule",
    "SchedulingStats",
    "adjust_pipestages",
    "choose_spill_candidates",
    "insert_spills",
    "max_ii",
    "min_ii",
    "modulo_schedule_bnb",
    "order_by_name",
    "pipeline_loop",
    "production_orders",
    "rec_mii",
    "res_mii",
    "search_ii",
]
