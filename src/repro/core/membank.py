"""Memory-bank pairing heuristic (Section 2.9).

The R8000 issues two memory references per cycle into a two-banked
streaming cache with a one-element overflow queue (the "bellows").  Two
same-cycle references to the same bank queue one of them; a full queue
stalls the processor.  The MIPSpro heuristic schedules *known even-odd
pairs* of references in the same cycle so that dual-issued references
provably hit opposite banks.

``BankPairer`` precomputes, for each memory operation ``m``, the priority-
ordered list ``L(m)`` of references known to hit the opposite bank, and
tracks how many pairs a schedule at a given II still needs: with ``R``
references and ``II`` cycles on a 2-port machine, at least ``R - II``
cycles must dual-issue, so ideally that many scheduled pairs are known
even-odd pairs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.loop import Loop
from ..ir.operations import MemRef, relative_bank


class BankPairer:
    """Pairing state for one scheduling attempt at a fixed II."""

    def __init__(self, loop: Loop, ii: int, priority: Sequence[int], strict: bool = True):
        self.loop = loop
        self.ii = ii
        self.strict = strict
        rank = {op: i for i, op in enumerate(priority)}
        mem_ops = [op.index for op in loop.ops if op.is_memory]
        self._partners: Dict[int, List[int]] = {}
        for m in mem_ops:
            partners = [
                other
                for other in mem_ops
                if other != m and self.relative_bank_of(m, other) == 1
            ]
            partners.sort(key=lambda op: rank.get(op, len(rank)))
            if partners:
                self._partners[m] = partners
        n_refs = len(mem_ops)
        self.pairs_needed = max(0, n_refs - ii)
        self.pairs_scheduled = 0
        self._paired: Dict[int, int] = {}  # op -> its pair mate (symmetric)
        # Memo for runtime_relative_bank: the answer is a pure function of
        # the op pair and the pipestage gap (independent of II, priority
        # order and pairing state), so the cache lives on the *loop* and is
        # shared by every pairer built for it — each scheduling attempt
        # constructs a fresh BankPairer but asks the same few questions.
        memo = getattr(loop, "_runtime_bank_memo", None)
        if memo is None:
            memo = loop._runtime_bank_memo = {}
        self._runtime_bank: Dict[tuple, Optional[int]] = memo

    def relative_bank_of(self, a: int, b: int) -> "Optional[int]":
        """Compile-time relative bank of two memory operations, using any
        base parities the loop declares known (incl. spill slots)."""
        ma, mb = self.loop.ops[a].mem, self.loop.ops[b].mem
        if ma is None or mb is None:
            return None
        return relative_bank(ma, mb, self.loop.known_parity)

    def runtime_relative_bank(self, a: int, ta: int, b: int, tb: int) -> "Optional[int]":
        """Relative bank of the two *instances* that share a steady-state
        cycle when ``a`` issues at ``ta`` and ``b`` at ``tb``.

        Operations in the same modulo slot but different pipestages execute
        together with iteration indices differing by the stage gap, which
        shifts the second reference's effective offset by ``delta*stride``;
        a pair that is opposite-bank within one iteration can be same-bank
        across stages and vice versa.
        """
        diff = ta - tb
        if diff % self.ii != 0:
            return None  # different slots never share a steady-state cycle
        delta = diff // self.ii
        key = (a, b, delta)
        memo = self._runtime_bank
        if key in memo:
            return memo[key]
        ma, mb = self.loop.ops[a].mem, self.loop.ops[b].mem
        if ma is None or mb is None:
            memo[key] = None
            return None
        if mb.is_direct and delta:
            mb = MemRef(
                base=mb.base,
                offset=mb.offset + delta * mb.stride,
                stride=mb.stride,
                width=mb.width,
                is_store=mb.is_store,
            )
        result = relative_bank(ma, mb, self.loop.known_parity)
        memo[key] = result
        return result

    # ------------------------------------------------------------------
    def is_pairable(self, op: int) -> bool:
        return op in self._partners

    def partners_of(self, op: int) -> List[int]:
        """The prioritized list L(op) of known opposite-bank references."""
        return self._partners.get(op, [])

    def want_more_pairs(self) -> bool:
        return self.pairs_scheduled < self.pairs_needed

    def mate_of(self, op: int) -> Optional[int]:
        return self._paired.get(op)

    def note_pair(self, a: int, b: int) -> None:
        if a in self._paired or b in self._paired:
            raise ValueError(f"op {a} or {b} already paired")
        self._paired[a] = b
        self._paired[b] = a
        self.pairs_scheduled += 1

    def unnote(self, op: int) -> Optional[int]:
        """Dissolve the pair containing ``op`` (when either side unschedules).

        Returns the former mate, if any.
        """
        mate = self._paired.pop(op, None)
        if mate is not None:
            del self._paired[mate]
            self.pairs_scheduled -= 1
        return mate

    def reset(self) -> None:
        self._paired.clear()
        self.pairs_scheduled = 0
