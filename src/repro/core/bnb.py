"""Branch-and-bound enumeration of modulo schedules (Sections 2.4-2.5).

This is the heart of the SGI heuristic pipeliner: given a candidate II and
a priority list, operations are placed one at a time into a modulo
reservation table.  Each operation gets a *legal range* of at most II
candidate cycles; a placement failure triggers a backtrack to a *catch
point* — a scheduled operation that advances to the next cycle of its
legal range after everything after it on the list is unscheduled.

The enumeration is exponential in its unpruned form (Figure 1 of the
paper); the production pruning rules restrict which operations may catch:

1. only the first listed element of a strongly connected component;
2. an operation whose resources differ from the failing operation's, and
   whose unscheduling makes the failing operation schedulable;
3. failing that, an operation with identical resources whose unscheduling
   lets the failing operation schedule *in a different slot*.

Legal ranges deliberately ignore dependences that cross strongly connected
components (the priority list need not be topological); the resulting
violations are repaired by the pipestage-adjustment postpass
(:mod:`repro.core.pipestage`), which moves whole components by multiples
of II.

The scheduler also implements the memory-bank pairing of Section 2.9: when
a pairable memory reference is placed and more known even-odd pairs are
needed, the first schedulable element of its partner list is immediately
placed in the same cycle, out of priority order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from ..machine.resources import ModuloReservationTable
from ..obs import get_recorder
from .distances import SccDistanceTables
from .membank import BankPairer


@dataclass
class BnBConfig:
    """Search-effort knobs.

    ``max_backtracks`` is the backtracking limit the conclusions section
    mentions: the one loop where the ILP beat the heuristics was equalised
    by "a very modest increase in the backtracking limits".
    """

    max_backtracks: int = 400
    max_placements: int = 250_000
    use_rule3: bool = True
    prune: bool = True


@dataclass
class BnBResult:
    times: Optional[Dict[int, int]]
    placements: int = 0
    backtracks: int = 0
    # Catch-point search accounting (§2.5): how often each pruning rule
    # rejected or selected a candidate catch, keyed by reason (``rule1``,
    # ``exhausted``, ``no_slot``, ``same_resource``, ``catch_rule2``,
    # ``catch_rule3``).
    prunes: Dict[str, int] = field(default_factory=dict)
    # Deepest priority-list position ever reached (best-so-far depth).
    max_depth: int = 0
    # Wall-clock seconds, filled in by callers that time the attempt.
    seconds: float = 0.0

    @property
    def success(self) -> bool:
        return self.times is not None


@dataclass
class _State:
    """Per-priority-position search state.

    ``direction`` is +1 when candidate cycles are tried earliest-first and
    -1 when tried latest-first.  The scan direction is chosen when the
    legal range is computed: an operation constrained only by already-
    scheduled *successors* is placed as late as possible (shortening live
    ranges from their beginnings), one constrained by predecessors as
    early as possible (Section 2.7).
    """

    op: int
    lo: int
    hi: int
    next_cycle: int
    direction: int = 1
    cycle: Optional[int] = None
    via_pairing: bool = False

    @property
    def exhausted(self) -> bool:
        if self.direction > 0:
            return self.next_cycle > self.hi
        return self.next_cycle < self.lo

    def candidates(self):
        if self.direction > 0:
            return range(self.next_cycle, self.hi + 1)
        return range(self.next_cycle, self.lo - 1, -1)


def modulo_schedule_bnb(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    priority: Sequence[int],
    config: Optional[BnBConfig] = None,
    pairer: Optional[BankPairer] = None,
) -> BnBResult:
    """Attempt to find a modulo schedule at ``ii`` following ``priority``.

    On success the returned times satisfy all resource constraints and all
    intra-SCC dependence constraints; cross-SCC dependences may still be
    violated and must be repaired by pipestage adjustment.
    """
    attempt = _Attempt(loop, machine, ii, priority, config or BnBConfig(), pairer)
    rec = get_recorder()
    if not rec.enabled:
        return attempt.run()
    with rec.span("bnb", loop=loop.name, ii=ii, n_ops=loop.n_ops):
        result = attempt.run()
    # Inner-loop effort is counted with plain integers; it is folded into
    # the recorder once per attempt so the hot path stays unobserved.
    rec.counter("bnb.attempts")
    rec.counter("bnb.placements", result.placements)
    rec.counter("bnb.backtracks", result.backtracks)
    for reason, count in result.prunes.items():
        rec.counter(f"bnb.prune.{reason}", count)
    rec.event(
        "bnb.attempt",
        loop=loop.name,
        ii=ii,
        success=result.success,
        placements=result.placements,
        backtracks=result.backtracks,
        max_depth=result.max_depth,
        prunes=dict(result.prunes),
    )
    return result


class _Attempt:
    def __init__(
        self,
        loop: Loop,
        machine: MachineDescription,
        ii: int,
        priority: Sequence[int],
        config: BnBConfig,
        pairer: Optional[BankPairer],
    ):
        if sorted(priority) != list(range(loop.n_ops)):
            raise ValueError("priority list must be a permutation of the operations")
        self.loop = loop
        self.machine = machine
        self.ii = ii
        self.order = list(priority)
        self.pos_of = {op: pos for pos, op in enumerate(self.order)}
        self.config = config
        self.pairer = pairer
        self.dists = SccDistanceTables(loop, ii)
        self.mrt = ModuloReservationTable(ii, machine.availability)
        self.times: Dict[int, int] = {}
        self.states: Dict[int, _State] = {}
        self._mem_at_slot: Dict[int, List[int]] = {}
        self.placements = 0
        self.backtracks = 0
        self.prunes: Dict[str, int] = {}
        self.max_depth = 0
        # Rule 1: the first listed element of each SCC.
        self._scc_first: Dict[int, int] = {}
        for pos, op in enumerate(self.order):
            scc = loop.ddg.scc_id(op)
            if scc not in self._scc_first:
                self._scc_first[scc] = pos

    # ------------------------------------------------------------------
    # Placement primitives
    # ------------------------------------------------------------------
    def _table(self, op: int):
        return self.machine.table(self.loop.ops[op].opclass)

    def _fits(self, op: int, cycle: int) -> bool:
        self.placements += 1
        return self.mrt.fits(self._table(op), cycle)

    def _place(self, op: int, cycle: int) -> None:
        self.mrt.place(self._table(op), cycle)
        self.times[op] = cycle
        if self.loop.ops[op].is_memory:
            self._mem_at_slot.setdefault(cycle % self.ii, []).append(op)

    def _unplace(self, op: int) -> int:
        cycle = self.times.pop(op)
        self.mrt.remove(self._table(op), cycle)
        if self.loop.ops[op].is_memory:
            self._mem_at_slot[cycle % self.ii].remove(op)
        if self.pairer is not None:
            self.pairer.unnote(op)
        return cycle

    def _cycle_is_risky(self, op: int, cycle: int) -> bool:
        """Would placing this memory op here share a steady-state cycle
        with a reference whose relative bank is unknown or equal?

        Section 2.9: with the bank heuristics enabled, references "with
        unknowable relative offsets" must not be "grouped together
        unnecessarily" — the scheduler prefers cycles where every
        co-resident reference is a known opposite-bank partner.
        """
        for other in self._mem_at_slot.get(cycle % self.ii, []):
            if other == op:
                continue
            if self.pairer.runtime_relative_bank(op, cycle, other, self.times[other]) != 1:
                return True
        return False

    def legal_range(self, op: int) -> Tuple[int, int]:
        lo, hi, _ = self.legal_range_directed(op)
        return lo, hi

    def legal_range_directed(self, op: int) -> Tuple[int, int, int]:
        """Legal cycle range for ``op`` given currently scheduled operations.

        SCC members consult the longest-path table against scheduled
        members of their component; other operations consult their direct
        scheduled predecessors and successors.  The range is clipped to II
        cycles (searching further would revisit the same modulo slots).
        """
        ddg = self.loop.ddg
        lo: Optional[int] = None
        hi: Optional[int] = None
        use_direct_arcs = True
        if ddg.in_nontrivial_scc(op):
            for member in ddg.scc_members(op):
                if member == op or member not in self.times:
                    continue
                t = self.times[member]
                d_in = self.dists.dist(member, op)
                if d_in is not None:
                    lo = d_in + t if lo is None else max(lo, d_in + t)
                d_out = self.dists.dist(op, member)
                if d_out is not None:
                    hi = t - d_out if hi is None else min(hi, t - d_out)
            # The first member of a component placed has no hard constraint
            # at all (cross-SCC arcs are repairable by pipestage
            # adjustment); anchor its window near its direct neighbours so
            # the component lands where its consumers/producers are.
            use_direct_arcs = lo is None and hi is None
        soft_bounds = use_direct_arcs and ddg.in_nontrivial_scc(op)
        if use_direct_arcs:
            for arc in ddg.preds(op):
                if arc.src == op or arc.src not in self.times:
                    continue
                bound = self.times[arc.src] + arc.min_distance(self.ii)
                lo = bound if lo is None else max(lo, bound)
            for arc in ddg.succs(op):
                if arc.dst == op or arc.dst not in self.times:
                    continue
                bound = self.times[arc.dst] - arc.min_distance(self.ii)
                hi = bound if hi is None else min(hi, bound)
        if lo is None and hi is None:
            lo, hi, direction = 0, self.ii - 1, 1
        elif lo is None:
            # Only successors constrain: place as late as possible.
            lo, direction = hi - self.ii + 1, -1
        elif hi is None:
            # Only predecessors constrain: place as early as possible.
            hi, direction = lo + self.ii - 1, 1
        else:
            # Both sides constrain: place next to the consumers.  With the
            # production orders, an operation's not-yet-scheduled inputs
            # will in turn be dragged toward it, keeping live ranges short
            # from their beginnings (Section 2.7).  The II-cycle clip is
            # anchored at the consumer end to match.
            if soft_bounds and lo > hi:
                # Soft (cross-SCC) bounds only: conflicts are repairable by
                # pipestage adjustment, so keep a producer-side window.
                hi = lo + self.ii - 1
            lo = max(lo, hi - self.ii + 1)
            direction = -1
        return lo, hi, direction

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def _result(self, times: Optional[Dict[int, int]]) -> BnBResult:
        return BnBResult(
            times, self.placements, self.backtracks, self.prunes, self.max_depth
        )

    def _prune(self, reason: str) -> None:
        self.prunes[reason] = self.prunes.get(reason, 0) + 1

    def run(self) -> BnBResult:
        if not self.dists.feasible:
            return self._result(None)
        n = self.loop.n_ops
        i = 0
        while i < n:
            if self.placements > self.config.max_placements:
                return self._result(None)
            op = self.order[i]
            if op in self.times:
                i += 1  # already scheduled as someone's bank partner
                continue
            if i > self.max_depth:
                self.max_depth = i
            state = self.states.get(i)
            if state is None:
                lo, hi, direction = self.legal_range_directed(op)
                start = lo if direction > 0 else hi
                state = _State(op=op, lo=lo, hi=hi, next_cycle=start, direction=direction)
                self.states[i] = state
            if self._try_place(i, state):
                i += 1
                continue
            catch = self._backtrack(i)
            if catch is None or self.backtracks >= self.config.max_backtracks:
                return self._result(None)
            self.backtracks += 1
            i = catch
        return self._result(dict(self.times))

    def _try_place(self, pos: int, state: _State) -> bool:
        """Place the operation at ``pos`` at the next workable cycle."""
        op = state.op
        pairing_wanted = (
            self.pairer is not None
            and self.pairer.want_more_pairs()
            and self.pairer.is_pairable(op)
            and self.pairer.mate_of(op) is None
        )
        if pairing_wanted and self.pairer.strict:
            cycle = self._scan_with_pairing(state)
            if cycle is not None:
                state.cycle = cycle
                state.next_cycle = cycle + state.direction
                return True
            # No cycle admits a pair; fall through and place unpaired.
        avoid_risk = self.pairer is not None and self.loop.ops[op].is_memory
        passes = (False, True) if avoid_risk else (True,)
        for risky_allowed in passes:
            for cycle in state.candidates():
                if not risky_allowed and self._cycle_is_risky(op, cycle):
                    continue
                if self._fits(op, cycle):
                    self._place(op, cycle)
                    state.cycle = cycle
                    state.next_cycle = cycle + state.direction
                    if pairing_wanted and not self.pairer.strict:
                        self._pair_partner(op, cycle)
                    return True
        state.next_cycle = (state.hi + 1) if state.direction > 0 else (state.lo - 1)
        state.cycle = None
        return False

    def _scan_with_pairing(self, state: _State) -> Optional[int]:
        """Find a cycle where the op fits *and* a known opposite-bank partner
        can be placed alongside it; place both on success."""
        op = state.op
        for cycle in state.candidates():
            if not self._fits(op, cycle):
                continue
            self._place(op, cycle)
            if self._pair_partner(op, cycle):
                return cycle
            self._unplace(op)
        return None

    def _pair_partner(self, op: int, cycle: int) -> bool:
        """Try to schedule the first possible element of L(op) at ``cycle``."""
        for partner in self.pairer.partners_of(op):
            if partner in self.times or self.pairer.mate_of(partner) is not None:
                continue
            lo, hi = self.legal_range(partner)
            if not (lo <= cycle <= hi):
                continue
            if not self._fits(partner, cycle):
                continue
            self._place(partner, cycle)
            self.pairer.note_pair(op, partner)
            ppos = self.pos_of[partner]
            self.states[ppos] = _State(
                op=partner, lo=cycle, hi=cycle, next_cycle=cycle + 1,
                cycle=cycle, via_pairing=True,
            )
            return True
        return False

    # ------------------------------------------------------------------
    # Backtracking with catch-point pruning
    # ------------------------------------------------------------------
    def _backtrack(self, fail_pos: int) -> Optional[int]:
        """Unschedule a suffix and choose the catch point for ``fail_pos``.

        Sweeps positions downward, unscheduling as it goes, testing each as
        a catch point under the pruning rules.  On success, positions below
        the catch are restored exactly as they were.
        """
        target = self.order[fail_pos]
        removed: List[Tuple[int, int, Optional[int]]] = []  # (pos, cycle, mate)
        rule3_catch: Optional[int] = None
        rule3_depth: Optional[int] = None
        catch: Optional[int] = None
        target_table = self._table(target)

        for j in range(fail_pos - 1, -1, -1):
            state = self.states.get(j)
            if state is None or state.cycle is None:
                continue
            jop = self.order[j]
            if jop not in self.times:
                continue
            old_cycle = state.cycle
            mate = self.pairer.mate_of(jop) if self.pairer is not None else None
            self._unplace(jop)
            state.cycle = None
            removed.append((j, old_cycle, mate))
            if mate is not None and mate in self.times:
                mate_pos = self.pos_of[mate]
                if mate_pos > fail_pos:
                    # Out-of-band partner ahead of the failure point: it was
                    # only scheduled for this pair, so release it too.
                    mstate = self.states.get(mate_pos)
                    removed.append((mate_pos, self.times[mate], jop))
                    self._unplace(mate)
                    if mstate is not None:
                        self.states.pop(mate_pos, None)
            if state.via_pairing:
                continue  # partners have no range of their own; cannot catch
            if not self.config.prune:
                if not state.exhausted:
                    catch = j
                    break
                continue
            if self._scc_first[self.loop.ddg.scc_id(jop)] != j:
                self._prune("rule1")
                continue  # rule 1
            if state.exhausted:
                self._prune("exhausted")
                continue
            lo, hi = self.legal_range(target)
            open_slots = [c for c in range(lo, hi + 1) if self._fits(target, c)]
            if not open_slots:
                self._prune("no_slot")
                continue
            if self._table(jop).uses != target_table.uses:
                self._prune("catch_rule2")
                catch = j  # rule 2: non-identical resources, now schedulable
                break
            if self.config.use_rule3 and rule3_catch is None:
                if any(c % self.ii != old_cycle % self.ii for c in open_slots):
                    rule3_catch = j
                    rule3_depth = len(removed)
                    continue
            self._prune("same_resource")

        if catch is None and rule3_catch is not None:
            self._prune("catch_rule3")
            catch = rule3_catch
            # Restore everything removed after the rule-3 sweep passed it.
            self._restore(removed[rule3_depth:])
            removed = removed[:rule3_depth]
        if catch is None:
            return None
        # Positions above the catch start over with fresh legal ranges.
        for pos in range(catch + 1, self.loop.n_ops):
            if self.order[pos] not in self.times:
                self.states.pop(pos, None)
        return catch

    def _restore(self, entries: List[Tuple[int, int, Optional[int]]]) -> None:
        """Re-place unscheduled entries (in increasing position order)."""
        for pos, cycle, mate in reversed(entries):
            op = self.order[pos]
            self._place(op, cycle)
            state = self.states.get(pos)
            if state is None:
                self.states[pos] = _State(
                    op=op, lo=cycle, hi=cycle, next_cycle=cycle + 1,
                    cycle=cycle, via_pairing=True,
                )
            else:
                state.cycle = cycle
            if (
                mate is not None
                and self.pairer is not None
                and mate in self.times
                and self.pairer.mate_of(op) is None
                and self.pairer.mate_of(mate) is None
            ):
                self.pairer.note_pair(op, mate)
