"""Branch-and-bound enumeration of modulo schedules (Sections 2.4-2.5).

This is the heart of the SGI heuristic pipeliner: given a candidate II and
a priority list, operations are placed one at a time into a modulo
reservation table.  Each operation gets a *legal range* of at most II
candidate cycles; a placement failure triggers a backtrack to a *catch
point* — a scheduled operation that advances to the next cycle of its
legal range after everything after it on the list is unscheduled.

The enumeration is exponential in its unpruned form (Figure 1 of the
paper); the production pruning rules restrict which operations may catch:

1. only the first listed element of a strongly connected component;
2. an operation whose resources differ from the failing operation's, and
   whose unscheduling makes the failing operation schedulable;
3. failing that, an operation with identical resources whose unscheduling
   lets the failing operation schedule *in a different slot*.

Legal ranges deliberately ignore dependences that cross strongly connected
components (the priority list need not be topological); the resulting
violations are repaired by the pipestage-adjustment postpass
(:mod:`repro.core.pipestage`), which moves whole components by multiples
of II.

The scheduler also implements the memory-bank pairing of Section 2.9: when
a pairable memory reference is placed and more known even-odd pairs are
needed, the first schedulable element of its partner list is immediately
placed in the same cycle, out of priority order.

Hot-path engineering (the raw-speed campaign; outcome-identical to the
straightforward form by construction):

* every per-operation lookup — reservation table, lowered resource
  entries, SCC membership, memory-ness, intra-SCC distances, direct-arc
  bounds at this II — is precomputed once per attempt into dense arrays;
* candidate-cycle scans and the backtracker's open-slot test use the
  packed reservation table's :meth:`blocked_mask` — one bitmask covering a
  whole II of slots — instead of probing cycle by cycle.  The
  ``placements`` accounting still counts exactly the probes the per-cycle
  loop would have made, so search budgets cut off at identical states;
* legal ranges are cached and invalidated through a precomputed inverse
  dependency map on place/unplace, instead of being recomputed from all
  placed predecessors and successors on every query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from ..machine.resources import LEGACY_HOTPATHS, ModuloReservationTable
from ..obs import get_recorder
from .distances import SccDistanceTables
from .membank import BankPairer


@dataclass
class BnBConfig:
    """Search-effort knobs.

    ``max_backtracks`` is the backtracking limit the conclusions section
    mentions: the one loop where the ILP beat the heuristics was equalised
    by "a very modest increase in the backtracking limits".
    """

    max_backtracks: int = 400
    max_placements: int = 250_000
    use_rule3: bool = True
    prune: bool = True


@dataclass
class BnBResult:
    times: Optional[Dict[int, int]]
    placements: int = 0
    backtracks: int = 0
    # Catch-point search accounting (§2.5): how often each pruning rule
    # rejected or selected a candidate catch, keyed by reason (``rule1``,
    # ``exhausted``, ``no_slot``, ``same_resource``, ``catch_rule2``,
    # ``catch_rule3``).
    prunes: Dict[str, int] = field(default_factory=dict)
    # Deepest priority-list position ever reached (best-so-far depth).
    max_depth: int = 0
    # Wall-clock seconds, filled in by callers that time the attempt.
    seconds: float = 0.0

    @property
    def success(self) -> bool:
        return self.times is not None


def _copy_result(result: BnBResult) -> BnBResult:
    """A defensive copy for the attempt memo (callers may consume times)."""
    return BnBResult(
        None if result.times is None else dict(result.times),
        result.placements,
        result.backtracks,
        dict(result.prunes),
        result.max_depth,
    )


class _State:
    """Per-priority-position search state.

    ``direction`` is +1 when candidate cycles are tried earliest-first and
    -1 when tried latest-first.  The scan direction is chosen when the
    legal range is computed: an operation constrained only by already-
    scheduled *successors* is placed as late as possible (shortening live
    ranges from their beginnings), one constrained by predecessors as
    early as possible (Section 2.7).
    """

    __slots__ = ("op", "lo", "hi", "next_cycle", "direction", "cycle", "via_pairing")

    def __init__(
        self,
        op: int,
        lo: int,
        hi: int,
        next_cycle: int,
        direction: int = 1,
        cycle: Optional[int] = None,
        via_pairing: bool = False,
    ):
        self.op = op
        self.lo = lo
        self.hi = hi
        self.next_cycle = next_cycle
        self.direction = direction
        self.cycle = cycle
        self.via_pairing = via_pairing

    @property
    def exhausted(self) -> bool:
        if self.direction > 0:
            return self.next_cycle > self.hi
        return self.next_cycle < self.lo

    def candidates(self):
        if self.direction > 0:
            return range(self.next_cycle, self.hi + 1)
        return range(self.next_cycle, self.lo - 1, -1)


def modulo_schedule_bnb(
    loop: Loop,
    machine: MachineDescription,
    ii: int,
    priority: Sequence[int],
    config: Optional[BnBConfig] = None,
    pairer: Optional[BankPairer] = None,
) -> BnBResult:
    """Attempt to find a modulo schedule at ``ii`` following ``priority``.

    On success the returned times satisfy all resource constraints and all
    intra-SCC dependence constraints; cross-SCC dependences may still be
    violated and must be repaired by pipestage adjustment.

    The search is deterministic in ``(machine, ii, priority, config)`` plus
    the pairer's configuration (a :class:`BankPairer` is itself a pure
    function of ``(loop, ii, priority, strict)``), so completed attempts
    are memoized per loop: the driver re-runs the winning configuration
    during bank-grouping repair, and the re-run returns the identical
    result — times *and* search-effort counters — without searching again.
    Memoization is skipped while the recorder is live (span structure
    should reflect real work) and under ``REPRO_LEGACY_HOTPATHS`` (clean
    A/B timing).
    """
    config = config or BnBConfig()
    rec = get_recorder()
    memo: Optional[Dict] = None
    memo_key = None
    if (
        not rec.enabled
        and not LEGACY_HOTPATHS
        and (pairer is None or type(pairer) is BankPairer)
    ):
        memo_key = (
            id(machine), ii, tuple(priority),
            config.max_backtracks, config.max_placements,
            config.use_rule3, config.prune,
            None if pairer is None else pairer.strict,
        )
        memo = getattr(loop.ddg, "_bnb_attempt_memo", None)
        if memo is None:
            memo = loop.ddg._bnb_attempt_memo = {}
        hit = memo.get(memo_key)
        if hit is not None:
            return _copy_result(hit)
    attempt = _Attempt(loop, machine, ii, priority, config, pairer)
    if not rec.enabled:
        result = attempt.run()
        if memo is not None:
            memo[memo_key] = _copy_result(result)
        return result
    with rec.span("bnb", loop=loop.name, ii=ii, n_ops=loop.n_ops):
        result = attempt.run()
    # Inner-loop effort is counted with plain integers; it is folded into
    # the recorder once per attempt so the hot path stays unobserved.
    rec.counter("bnb.attempts")
    rec.counter("bnb.placements", result.placements)
    rec.counter("bnb.backtracks", result.backtracks)
    for reason, count in result.prunes.items():
        rec.counter(f"bnb.prune.{reason}", count)
    rec.event(
        "bnb.attempt",
        loop=loop.name,
        ii=ii,
        success=result.success,
        placements=result.placements,
        backtracks=result.backtracks,
        max_depth=result.max_depth,
        prunes=dict(result.prunes),
    )
    return result


class _IIPlan:
    """Order-independent per-``(machine, II)`` precompute.

    Everything here is read-only during the search and identical for every
    priority order, so all four production orders (and their re-runs in
    the driver's repair passes) share one build.  Cached on ``loop.ddg``
    next to the distance memo (same lifetime: the loop).
    """

    __slots__ = (
        "dists", "tables", "tkey", "is_mem", "in_scc",
        "scc_in", "scc_out", "pred_arcs", "succ_arcs", "range_inv",
    )

    def __init__(self, loop: Loop, machine: MachineDescription, ii: int):
        self.dists = SccDistanceTables(loop, ii)
        ddg = loop.ddg
        n = loop.n_ops
        # Interned table identity so the rule-2 "identical resources" test
        # is an int compare.  Lowered forms stay per-attempt: the lowering
        # is MRT-implementation-specific (and cached on the tables anyway).
        self.tables = [machine.table(op.opclass) for op in loop.ops]
        tkeys: Dict[Tuple, int] = {}
        self.tkey = [tkeys.setdefault(t.uses, len(tkeys)) for t in self.tables]
        self.is_mem = [op.is_memory for op in loop.ops]
        self.in_scc = [ddg.in_nontrivial_scc(op) for op in range(n)]
        # Intra-SCC distance adjacency: (member, dist) pairs in member
        # order, split by direction, skipping pairs with no path.
        dist = self.dists.dist
        self.scc_in: List[Tuple[Tuple[int, int], ...]] = [()] * n
        self.scc_out: List[Tuple[Tuple[int, int], ...]] = [()] * n
        # Direct-arc bounds at this II, excluding self-arcs.
        self.pred_arcs: List[Tuple[Tuple[int, int], ...]] = [()] * n
        self.succ_arcs: List[Tuple[Tuple[int, int], ...]] = [()] * n
        # Inverse dependency map for the legal-range cache: placing or
        # unplacing op d changes the range of every op in range_inv[d].
        self.range_inv: List[List[int]] = [[] for _ in range(n)]
        for op in range(n):
            deps: Dict[int, None] = {}
            if self.in_scc[op]:
                members_in = []
                members_out = []
                for member in ddg.scc_members(op):
                    if member == op:
                        continue
                    deps[member] = None
                    d_in = dist(member, op)
                    if d_in is not None:
                        members_in.append((member, d_in))
                    d_out = dist(op, member)
                    if d_out is not None:
                        members_out.append((member, d_out))
                self.scc_in[op] = tuple(members_in)
                self.scc_out[op] = tuple(members_out)
            preds = []
            for arc in ddg.preds(op):
                if arc.src != op:
                    preds.append((arc.src, arc.latency - ii * arc.omega))
                    deps[arc.src] = None
            succs = []
            for arc in ddg.succs(op):
                if arc.dst != op:
                    succs.append((arc.dst, arc.latency - ii * arc.omega))
                    deps[arc.dst] = None
            self.pred_arcs[op] = tuple(preds)
            self.succ_arcs[op] = tuple(succs)
            for d in deps:
                self.range_inv[d].append(op)


class _Plan:
    """The thin order-dependent layer over an :class:`_IIPlan`."""

    __slots__ = ("base", "order", "pos_of", "rule1_pos")

    def __init__(self, loop: Loop, base: _IIPlan, priority: Sequence[int]):
        if sorted(priority) != list(range(loop.n_ops)):
            raise ValueError("priority list must be a permutation of the operations")
        self.base = base
        self.order = list(priority)
        self.pos_of = {op: pos for pos, op in enumerate(self.order)}
        ddg = loop.ddg
        # Rule 1: the first listed element of each SCC.
        scc_first: Dict[int, int] = {}
        for pos, op in enumerate(self.order):
            scc = ddg.scc_id(op)
            if scc not in scc_first:
                scc_first[scc] = pos
        self.rule1_pos = [
            scc_first[ddg.scc_id(op)] for op in self.order
        ]


def prepare_attempt(
    loop: Loop, machine: MachineDescription, ii: int, priority: Sequence[int]
) -> None:
    """Warm every per-``(loop, machine, II, order)`` structure an attempt needs.

    Callers that time the search (the II search, the driver's bank-repair
    reschedules) invoke this *outside* their timed window, the same way
    :meth:`SccDistanceTables.prime` hoists the longest-path analysis: plan
    construction and reservation-table lowering are loop/machine analysis,
    not search, and they are cached across every attempt on the loop.
    """
    plan = _plan_for(loop, machine, ii, priority)
    mrt = ModuloReservationTable(ii, machine.availability)
    for t in plan.base.tables:
        mrt.lower(t)


def _plan_for(
    loop: Loop, machine: MachineDescription, ii: int, priority: Sequence[int]
) -> _Plan:
    ddg = loop.ddg
    cache = getattr(ddg, "_bnb_plans", None)
    if cache is None:
        cache = ddg._bnb_plans = {}
    base_key = (id(machine), ii)
    base = cache.get(base_key)
    if base is None:
        base = cache[base_key] = _IIPlan(loop, machine, ii)
    key = (id(machine), ii, tuple(priority))
    plan = cache.get(key)
    if plan is None:
        plan = cache[key] = _Plan(loop, base, priority)
    return plan


class _Attempt:
    def __init__(
        self,
        loop: Loop,
        machine: MachineDescription,
        ii: int,
        priority: Sequence[int],
        config: BnBConfig,
        pairer: Optional[BankPairer],
    ):
        plan = _plan_for(loop, machine, ii, priority)
        base = plan.base
        self.loop = loop
        self.machine = machine
        self.ii = ii
        self.order = plan.order
        self.pos_of = plan.pos_of
        self.config = config
        self.pairer = pairer
        self.dists = base.dists
        self.mrt = ModuloReservationTable(ii, machine.availability)
        self.times: Dict[int, int] = {}
        self.states: Dict[int, _State] = {}
        # slot -> {memory op: placement count} (count-aware: an op placed
        # and unplaced through backtracking never corrupts its neighbours).
        self._mem_at_slot: Dict[int, Dict[int, int]] = {}
        self.placements = 0
        self.backtracks = 0
        self.prunes: Dict[str, int] = {}
        self.max_depth = 0
        # Per-attempt lowered forms (the lowering is MRT-implementation-
        # specific; each call hits the cache on the ReservationTable).
        mrt = self.mrt
        self._lt = [mrt.lower(t) for t in base.tables]
        self._tkey = base.tkey
        self._is_mem = base.is_mem
        self._in_scc = base.in_scc
        self._rule1_pos = plan.rule1_pos
        self._scc_in = base.scc_in
        self._scc_out = base.scc_out
        self._pred_arcs = base.pred_arcs
        self._succ_arcs = base.succ_arcs
        self._range_inv = base.range_inv
        self._range_cache: Dict[int, Tuple[int, int, int]] = {}

    # ------------------------------------------------------------------
    # Placement primitives
    # ------------------------------------------------------------------
    def _table(self, op: int):
        return self.machine.table(self.loop.ops[op].opclass)

    def _fits(self, op: int, cycle: int) -> bool:
        self.placements += 1
        return self.mrt.fits_lowered(self._lt[op], cycle)

    def _place(self, op: int, cycle: int) -> None:
        self.mrt.place_lowered(self._lt[op], cycle)
        self.times[op] = cycle
        if self._is_mem[op]:
            at_slot = self._mem_at_slot.setdefault(cycle % self.ii, {})
            at_slot[op] = at_slot.get(op, 0) + 1
        cache = self._range_cache
        for dep in self._range_inv[op]:
            cache.pop(dep, None)

    def _unplace(self, op: int) -> int:
        cycle = self.times.pop(op)
        self.mrt.remove_lowered(self._lt[op], cycle)
        if self._is_mem[op]:
            at_slot = self._mem_at_slot[cycle % self.ii]
            remaining = at_slot[op] - 1
            if remaining:
                at_slot[op] = remaining
            else:
                del at_slot[op]
        if self.pairer is not None:
            self.pairer.unnote(op)
        cache = self._range_cache
        for dep in self._range_inv[op]:
            cache.pop(dep, None)
        return cycle

    def _cycle_is_risky(self, op: int, cycle: int) -> bool:
        """Would placing this memory op here share a steady-state cycle
        with a reference whose relative bank is unknown or equal?

        Section 2.9: with the bank heuristics enabled, references "with
        unknowable relative offsets" must not be "grouped together
        unnecessarily" — the scheduler prefers cycles where every
        co-resident reference is a known opposite-bank partner.
        """
        at_slot = self._mem_at_slot.get(cycle % self.ii)
        if not at_slot:
            return False
        times = self.times
        bank = self.pairer.runtime_relative_bank
        for other in at_slot:
            if other == op:
                continue
            if bank(op, cycle, other, times[other]) != 1:
                return True
        return False

    def legal_range(self, op: int) -> Tuple[int, int]:
        lo, hi, _ = self.legal_range_directed(op)
        return lo, hi

    def legal_range_directed(self, op: int) -> Tuple[int, int, int]:
        """Legal cycle range for ``op`` given currently scheduled operations.

        SCC members consult the longest-path table against scheduled
        members of their component; other operations consult their direct
        scheduled predecessors and successors.  The range is clipped to II
        cycles (searching further would revisit the same modulo slots).

        Results are cached; placing or unplacing any operation this range
        depends on (via ``_range_inv``) invalidates the cache entry.
        """
        cached = self._range_cache.get(op)
        if cached is not None:
            return cached
        times = self.times
        lo: Optional[int] = None
        hi: Optional[int] = None
        use_direct_arcs = True
        in_scc = self._in_scc[op]
        if in_scc:
            for member, d_in in self._scc_in[op]:
                t = times.get(member)
                if t is None:
                    continue
                bound = d_in + t
                if lo is None or bound > lo:
                    lo = bound
            for member, d_out in self._scc_out[op]:
                t = times.get(member)
                if t is None:
                    continue
                bound = t - d_out
                if hi is None or bound < hi:
                    hi = bound
            # The first member of a component placed has no hard constraint
            # at all (cross-SCC arcs are repairable by pipestage
            # adjustment); anchor its window near its direct neighbours so
            # the component lands where its consumers/producers are.
            use_direct_arcs = lo is None and hi is None
        soft_bounds = use_direct_arcs and in_scc
        if use_direct_arcs:
            for src, min_dist in self._pred_arcs[op]:
                t = times.get(src)
                if t is None:
                    continue
                bound = t + min_dist
                if lo is None or bound > lo:
                    lo = bound
            for dst, min_dist in self._succ_arcs[op]:
                t = times.get(dst)
                if t is None:
                    continue
                bound = t - min_dist
                if hi is None or bound < hi:
                    hi = bound
        if lo is None and hi is None:
            lo, hi, direction = 0, self.ii - 1, 1
        elif lo is None:
            # Only successors constrain: place as late as possible.
            lo, direction = hi - self.ii + 1, -1
        elif hi is None:
            # Only predecessors constrain: place as early as possible.
            hi, direction = lo + self.ii - 1, 1
        else:
            # Both sides constrain: place next to the consumers.  With the
            # production orders, an operation's not-yet-scheduled inputs
            # will in turn be dragged toward it, keeping live ranges short
            # from their beginnings (Section 2.7).  The II-cycle clip is
            # anchored at the consumer end to match.
            if soft_bounds and lo > hi:
                # Soft (cross-SCC) bounds only: conflicts are repairable by
                # pipestage adjustment, so keep a producer-side window.
                hi = lo + self.ii - 1
            lo = max(lo, hi - self.ii + 1)
            direction = -1
        result = (lo, hi, direction)
        self._range_cache[op] = result
        return result

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def _result(self, times: Optional[Dict[int, int]]) -> BnBResult:
        return BnBResult(
            times, self.placements, self.backtracks, self.prunes, self.max_depth
        )

    def _prune(self, reason: str) -> None:
        self.prunes[reason] = self.prunes.get(reason, 0) + 1

    def run(self) -> BnBResult:
        if not self.dists.feasible:
            return self._result(None)
        n = self.loop.n_ops
        order = self.order
        times = self.times
        states = self.states
        max_placements = self.config.max_placements
        max_backtracks = self.config.max_backtracks
        try_place = self._try_place
        legal_range_directed = self.legal_range_directed
        i = 0
        while i < n:
            if self.placements > max_placements:
                return self._result(None)
            op = order[i]
            if op in times:
                i += 1  # already scheduled as someone's bank partner
                continue
            if i > self.max_depth:
                self.max_depth = i
            state = states.get(i)
            if state is None:
                lo, hi, direction = legal_range_directed(op)
                start = lo if direction > 0 else hi
                state = _State(op=op, lo=lo, hi=hi, next_cycle=start, direction=direction)
                states[i] = state
            if try_place(i, state):
                i += 1
                continue
            catch = self._backtrack(i)
            if catch is None or self.backtracks >= max_backtracks:
                return self._result(None)
            self.backtracks += 1
            i = catch
        return self._result(dict(times))

    def _first_fit(self, op: int, state: _State) -> Tuple[Optional[int], int]:
        """First workable cycle in ``state.candidates()`` plus probe count.

        Probe-for-probe equivalent to scanning ``state.candidates()`` with
        :meth:`_fits`: the returned count is exactly the number of cycles
        the sequential scan would have probed (all of them on failure), so
        ``placements`` budgets cut off identically.  The candidate window
        never exceeds II cycles, so each modulo slot is visited at most
        once and one ``blocked_mask`` covers the whole scan.
        """
        ii = self.ii
        wrap = (1 << ii) - 1
        if state.direction > 0:
            start = state.next_cycle
            span = state.hi - start + 1
            if span <= 0:
                return None, 0
            free = ~self.mrt.blocked_mask(self._lt[op]) & wrap
            r = start % ii
            aligned = ((free >> r) | (free << (ii - r))) & ((1 << span) - 1)
            if not aligned:
                return None, span
            offset = (aligned & -aligned).bit_length() - 1
            return start + offset, offset + 1
        start = state.next_cycle
        span = start - state.lo + 1
        if span <= 0:
            return None, 0
        free = ~self.mrt.blocked_mask(self._lt[op]) & wrap
        r = state.lo % ii
        aligned = ((free >> r) | (free << (ii - r))) & ((1 << span) - 1)
        if not aligned:
            return None, span
        offset = aligned.bit_length() - 1  # highest free bit = latest cycle
        return state.lo + offset, span - offset

    def _try_place(self, pos: int, state: _State) -> bool:
        """Place the operation at ``pos`` at the next workable cycle."""
        op = state.op
        pairing_wanted = (
            self.pairer is not None
            and self.pairer.want_more_pairs()
            and self.pairer.is_pairable(op)
            and self.pairer.mate_of(op) is None
        )
        if pairing_wanted and self.pairer.strict:
            cycle = self._scan_with_pairing(state)
            if cycle is not None:
                state.cycle = cycle
                state.next_cycle = cycle + state.direction
                return True
            # No cycle admits a pair; fall through and place unpaired.
        avoid_risk = self.pairer is not None and self._is_mem[op]
        if not avoid_risk or not self._mem_at_slot:
            # With no memory op placed anywhere, no cycle can be risky: the
            # risk-avoiding scan degenerates to plain first-fit (same visit
            # order), so both cases take the batched path.  Probe parity:
            # the two-pass risky scan re-probes every candidate in its
            # second pass when the first finds nothing, hence the doubled
            # charge on failure.
            cycle, probes = self._first_fit(op, state)
            self.placements += probes if cycle is not None or not avoid_risk else 2 * probes
            if cycle is not None:
                self._place(op, cycle)
                state.cycle = cycle
                state.next_cycle = cycle + state.direction
                if pairing_wanted and not self.pairer.strict:
                    self._pair_partner(op, cycle)
                return True
        else:
            # Riskiness depends on co-resident memory ops, so this scan
            # stays cycle by cycle; the fit test itself is one bit probe
            # (occupancy cannot change mid-scan).
            blocked = self.mrt.blocked_mask(self._lt[op])
            ii = self.ii
            cycle_is_risky = self._cycle_is_risky
            for risky_allowed in (False, True):
                for cycle in state.candidates():
                    if not risky_allowed and cycle_is_risky(op, cycle):
                        continue
                    self.placements += 1
                    if not (blocked >> (cycle % ii)) & 1:
                        self._place(op, cycle)
                        state.cycle = cycle
                        state.next_cycle = cycle + state.direction
                        if pairing_wanted and not self.pairer.strict:
                            self._pair_partner(op, cycle)
                        return True
        state.next_cycle = (state.hi + 1) if state.direction > 0 else (state.lo - 1)
        state.cycle = None
        return False

    def _scan_with_pairing(self, state: _State) -> Optional[int]:
        """Find a cycle where the op fits *and* a known opposite-bank partner
        can be placed alongside it; place both on success."""
        op = state.op
        fits = self.mrt.fits_lowered
        lt = self._lt[op]
        for cycle in state.candidates():
            self.placements += 1  # same probe accounting as _fits
            if not fits(lt, cycle):
                continue
            self._place(op, cycle)
            if self._pair_partner(op, cycle):
                return cycle
            self._unplace(op)
        return None

    def _pair_partner(self, op: int, cycle: int) -> bool:
        """Try to schedule the first possible element of L(op) at ``cycle``."""
        pairer = self.pairer
        times = self.times
        fits = self.mrt.fits_lowered
        lts = self._lt
        for partner in pairer.partners_of(op):
            if partner in times or pairer.mate_of(partner) is not None:
                continue
            lo, hi = self.legal_range(partner)
            if not (lo <= cycle <= hi):
                continue
            self.placements += 1  # same probe accounting as _fits
            if not fits(lts[partner], cycle):
                continue
            self._place(partner, cycle)
            pairer.note_pair(op, partner)
            ppos = self.pos_of[partner]
            self.states[ppos] = _State(
                op=partner, lo=cycle, hi=cycle, next_cycle=cycle + 1,
                cycle=cycle, via_pairing=True,
            )
            return True
        return False

    # ------------------------------------------------------------------
    # Backtracking with catch-point pruning
    # ------------------------------------------------------------------
    def _backtrack(self, fail_pos: int) -> Optional[int]:
        """Unschedule a suffix and choose the catch point for ``fail_pos``.

        Sweeps positions downward, unscheduling as it goes, testing each as
        a catch point under the pruning rules.  On success, positions below
        the catch are restored exactly as they were.
        """
        target = self.order[fail_pos]
        removed: List[Tuple[int, int, Optional[int]]] = []  # (pos, cycle, mate)
        rule3_catch: Optional[int] = None
        rule3_depth: Optional[int] = None
        catch: Optional[int] = None
        target_lt = self._lt[target]
        target_tkey = self._tkey[target]
        ii = self.ii

        for j in range(fail_pos - 1, -1, -1):
            state = self.states.get(j)
            if state is None or state.cycle is None:
                continue
            jop = self.order[j]
            if jop not in self.times:
                continue
            old_cycle = state.cycle
            mate = self.pairer.mate_of(jop) if self.pairer is not None else None
            self._unplace(jop)
            state.cycle = None
            removed.append((j, old_cycle, mate))
            if mate is not None and mate in self.times:
                mate_pos = self.pos_of[mate]
                if mate_pos > fail_pos:
                    # Out-of-band partner ahead of the failure point: it was
                    # only scheduled for this pair, so release it too.
                    mstate = self.states.get(mate_pos)
                    removed.append((mate_pos, self.times[mate], jop))
                    self._unplace(mate)
                    if mstate is not None:
                        self.states.pop(mate_pos, None)
            if state.via_pairing:
                continue  # partners have no range of their own; cannot catch
            if not self.config.prune:
                if not state.exhausted:
                    catch = j
                    break
                continue
            if self._rule1_pos[j] != j:
                self._prune("rule1")
                continue  # rule 1
            if state.exhausted:
                self._prune("exhausted")
                continue
            lo, hi = self.legal_range(target)
            span = hi - lo + 1
            if span <= 0:
                self._prune("no_slot")
                continue
            # One blocked_mask stands in for probing every cycle of
            # [lo, hi]; the probes are still charged to the budget.
            self.placements += span
            free = ~self.mrt.blocked_mask(target_lt) & ((1 << ii) - 1)
            r = lo % ii
            open_mask = ((free >> r) | (free << (ii - r))) & ((1 << span) - 1)
            if not open_mask:
                self._prune("no_slot")
                continue
            if self._tkey[jop] != target_tkey:
                self._prune("catch_rule2")
                catch = j  # rule 2: non-identical resources, now schedulable
                break
            if self.config.use_rule3 and rule3_catch is None:
                # Any open cycle in a *different* modulo slot than the
                # unscheduled op's old cycle?  Bit p of open_mask is cycle
                # lo + p; the old slot recurs every II bits.
                same_slot = 0
                p = (old_cycle - lo) % ii
                while p < span:
                    same_slot |= 1 << p
                    p += ii
                if open_mask & ~same_slot:
                    rule3_catch = j
                    rule3_depth = len(removed)
                    continue
            self._prune("same_resource")

        if catch is None and rule3_catch is not None:
            self._prune("catch_rule3")
            catch = rule3_catch
            # Restore everything removed after the rule-3 sweep passed it.
            self._restore(removed[rule3_depth:])
            removed = removed[:rule3_depth]
        if catch is None:
            return None
        # Positions above the catch start over with fresh legal ranges.
        for pos in range(catch + 1, self.loop.n_ops):
            if self.order[pos] not in self.times:
                self.states.pop(pos, None)
        return catch

    def _restore(self, entries: List[Tuple[int, int, Optional[int]]]) -> None:
        """Re-place unscheduled entries (in increasing position order)."""
        for pos, cycle, mate in reversed(entries):
            op = self.order[pos]
            self._place(op, cycle)
            state = self.states.get(pos)
            if state is None:
                self.states[pos] = _State(
                    op=op, lo=cycle, hi=cycle, next_cycle=cycle + 1,
                    cycle=cycle, via_pairing=True,
                )
            else:
                state.cycle = cycle
            if (
                mate is not None
                and self.pairer is not None
                and mate in self.times
                and self.pairer.mate_of(op) is None
                and self.pairer.mate_of(mate) is None
            ):
                self.pairer.note_pair(op, mate)
