"""Lower bounds on the initiation interval: ResMII, RecMII, MinII.

MinII is the "loose lower bound based on resources required and any
dependence cycles in the loop body" [RaGl81] that anchors the II search of
Section 2.3 and serves as the paper's yardstick for schedule quality
("scheduled at their MinII").
"""

from __future__ import annotations

import math
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription


def res_mii(loop: Loop, machine: MachineDescription) -> int:
    """Resource-constrained lower bound.

    For each resource, total units consumed by one iteration divided by the
    units available per cycle, rounded up; the maximum over resources.
    """
    demand: dict = {}
    for op in loop.ops:
        for resource, count in machine.table(op.opclass).totals().items():
            demand[resource] = demand.get(resource, 0) + count
    bound = 1
    for resource, total in demand.items():
        avail = machine.availability.get(resource)
        if avail is None or avail <= 0:
            raise ValueError(f"machine {machine.name} lacks resource {resource!r}")
        bound = max(bound, math.ceil(total / avail))
    return bound


def _has_positive_cycle(loop: Loop, ii: int) -> bool:
    """Is there a dependence cycle with positive total ``latency - ii*omega``?

    Detected with a Bellman-Ford-style longest-path relaxation: if after
    ``n`` full passes a distance still improves, a positive cycle exists.
    """
    n = loop.n_ops
    dist = [0] * n
    arcs = [(a.src, a.dst, a.latency - ii * a.omega) for a in loop.ddg.arcs]
    for _ in range(n):
        changed = False
        for src, dst, w in arcs:
            if dist[src] + w > dist[dst]:
                dist[dst] = dist[src] + w
                changed = True
        if not changed:
            return False
    return True


def rec_mii(loop: Loop) -> int:
    """Recurrence-constrained lower bound.

    The smallest integer II for which no dependence cycle requires
    ``t(op) - t(op) > 0``; equivalently the ceiling of the maximum cycle
    ratio ``sum(latency) / sum(omega)``.  Found by binary search with a
    positive-cycle oracle.
    """
    if not loop.ddg.arcs:
        return 1
    hi = max(1, sum(max(a.latency, 0) for a in loop.ddg.arcs))
    if not _has_positive_cycle(loop, 1):
        return 1
    lo = 1  # infeasible
    if _has_positive_cycle(loop, hi):
        raise ValueError(
            f"loop {loop.name!r} has a dependence cycle with no carried arc; cannot pipeline"
        )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _has_positive_cycle(loop, mid):
            lo = mid
        else:
            hi = mid
    return hi


def min_ii(loop: Loop, machine: MachineDescription) -> int:
    """MinII = max(ResMII, RecMII)."""
    return max(res_mii(loop, machine), rec_mii(loop))


def max_ii(loop: Loop, machine: MachineDescription, factor: int = 2) -> int:
    """The compile-speed circuit breaker of Section 2.3: MaxII = 2 * MinII."""
    return factor * min_ii(loop, machine)
