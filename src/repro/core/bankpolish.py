"""Local memory-bank polishing of a finished schedule (Section 2.9).

"Since the minimal II schedule found first may not be best once memory
stalls are taken into account, the algorithm makes a small exploration of
other schedules at the same ... II, searching for schedules with provably
better stalling behavior."

This pass implements that exploration as a local repair: with every other
operation fixed, each memory operation sitting in a *risky* modulo slot
(sharing its steady-state cycle with a reference of unknown or equal
bank) is moved within its dependence slack to a cycle that is provably
conflict-free — preferring the nearest such cycle so live ranges barely
change.  The result keeps the same II and is revalidated; the caller keeps
it only if it still register-allocates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription
from ..machine.resources import ModuloReservationTable
from .membank import BankPairer
from .sched import Schedule


def _legal_window(loop: Loop, times: Dict[int, int], ii: int, op: int) -> Tuple[int, int]:
    """Exact legal cycle range for ``op`` with every other op fixed."""
    lo, hi = None, None
    for arc in loop.ddg.preds(op):
        if arc.src == op:
            continue
        bound = times[arc.src] + arc.latency - ii * arc.omega
        lo = bound if lo is None else max(lo, bound)
    for arc in loop.ddg.succs(op):
        if arc.dst == op:
            continue
        bound = times[arc.dst] - arc.latency + ii * arc.omega
        hi = bound if hi is None else min(hi, bound)
    t = times[op]
    if lo is None:
        lo = t - ii + 1
    if hi is None:
        hi = t + ii - 1
    return lo, hi


def polish_bank_schedule(
    schedule: Schedule,
    machine: MachineDescription,
    pairer: BankPairer,
) -> Optional[Schedule]:
    """Move memory ops out of risky cycles at the same II.

    Returns an improved schedule, or None when nothing was movable.
    """
    loop = schedule.loop
    ii = schedule.ii
    times = dict(schedule.times)
    mrt = ModuloReservationTable(ii, machine.availability)
    for op in loop.ops:
        mrt.place(machine.table(op.opclass), times[op.index])

    mem_at_slot: Dict[int, List[int]] = {}
    for op in loop.memory_ops():
        mem_at_slot.setdefault(times[op.index] % ii, []).append(op.index)

    def risky(op: int, cycle: int) -> bool:
        return any(
            other != op
            and pairer.runtime_relative_bank(op, cycle, other, times[other]) != 1
            for other in mem_at_slot.get(cycle % ii, [])
        )

    changed = False
    for op in sorted(o.index for o in loop.memory_ops()):
        t = times[op]
        if not risky(op, t):
            continue
        lo, hi = _legal_window(loop, times, ii, op)
        table = machine.table(loop.ops[op].opclass)
        # Try candidate cycles nearest the current position first.
        candidates = sorted(
            (c for c in range(lo, hi + 1) if c != t),
            key=lambda c: (abs(c - t), c),
        )
        mrt.remove(table, t)
        mem_at_slot[t % ii].remove(op)
        new_cycle = None
        for c in candidates:
            if risky(op, c):
                continue
            if mrt.fits(table, c):
                new_cycle = c
                break
        if new_cycle is None:
            mrt.place(table, t)
            mem_at_slot.setdefault(t % ii, []).append(op)
            continue
        mrt.place(table, new_cycle)
        mem_at_slot.setdefault(new_cycle % ii, []).append(op)
        times[op] = new_cycle
        changed = True

    if not changed:
        return None
    polished = Schedule(
        loop=loop,
        machine=machine,
        ii=ii,
        times=times,
        producer=schedule.producer + "+polish",
    )
    polished.validate()
    return polished
