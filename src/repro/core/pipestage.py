"""Pipestage adjustment postpass (Section 2.5).

The branch-and-bound scheduler's legal ranges ignore dependences that
cross strongly connected components, so its raw output may violate them.
Because any two operations in *different* components may occupy any two
modulo slots — it is "just a matter of adjusting the pipestages" — the
postpass repairs all such violations by moving whole components *earlier*
by multiples of II, which leaves the modulo reservation table untouched.

Components are visited topologically starting from the roots (operations
with no successors, such as stores): when a component is visited, every
component it feeds has already been fixed, so one shift suffices.
"""

from __future__ import annotations

import math
from typing import Dict

from ..ir.loop import Loop


def adjust_pipestages(loop: Loop, ii: int, times: Dict[int, int]) -> Dict[int, int]:
    """Return times satisfying every dependence arc, shifting SCCs by k*II.

    ``times`` must already satisfy all intra-SCC dependence constraints;
    modulo slots (``t mod II``) are preserved exactly.
    """
    ddg = loop.ddg
    adjusted = dict(times)
    # ddg.sccs is in reverse topological order: components near the roots
    # (stores) first, their predecessors later — exactly the visit order
    # the postpass needs.
    for scc in ddg.sccs:
        scc_id = ddg.scc_id(scc[0])
        shift_stages = 0
        for u in scc:
            for arc in ddg.succs(u):
                if ddg.scc_id(arc.dst) == scc_id:
                    continue
                # Need: adjusted[dst] >= (adjusted[u] - k*II) + lat - II*omega
                slack = adjusted[u] + arc.latency - ii * arc.omega - adjusted[arc.dst]
                if slack > 0:
                    shift_stages = max(shift_stages, math.ceil(slack / ii))
        if shift_stages:
            for u in scc:
                adjusted[u] -= shift_stages * ii
    return adjusted
