"""Aggregation metrics for the experiment harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """The SPEC aggregate: geometric mean of per-benchmark results."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def weighted_relative_time(
    weights: Sequence[float],
    cycles: Sequence[float],
    reference_cycles: Sequence[float],
) -> float:
    """Benchmark-level relative runtime from per-loop cycle counts.

    ``weights[i]`` is the fraction of the benchmark's runtime spent in
    loop ``i`` under the *reference* configuration; the loop's contribution
    scales with how its cycle count changed relative to the reference:

        T / T_ref = sum_i w_i * cycles_i / reference_cycles_i
    """
    if not (len(weights) == len(cycles) == len(reference_cycles)):
        raise ValueError("mismatched metric vectors")
    total_w = sum(weights)
    if total_w <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(
        w * c / ref for w, c, ref in zip(weights, cycles, reference_cycles)
    ) / total_w


def speedup(baseline_cycles: float, improved_cycles: float) -> float:
    """How many times faster the improved configuration runs."""
    if improved_cycles <= 0:
        raise ValueError("non-positive cycle count")
    return baseline_cycles / improved_cycles
