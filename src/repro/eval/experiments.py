"""Experiment drivers: one per table/figure of the paper's evaluation.

Every experiment returns an :class:`ExperimentResult` whose ``table``
reproduces the figure's rows and whose ``chart`` renders the same data as
the paper's horizontal bar charts.  Absolute numbers differ from the paper
(our substrate is a simulator, not a 75 MHz Power Challenge); the *shape*
— who wins, by roughly what factor — is the reproduction target, and
EXPERIMENTS.md records both sides.

Since the ``repro.exec`` rewire, experiments are two-phase: they first
*enumerate* every (loop × scheduler × options) cell they need, hand the
whole batch to the parallel engine (``jobs``/``cache_dir`` on
:class:`ExperimentConfig`), then assemble tables from the returned
measurements.  Scheduling work is therefore fanned out, deadline-guarded
and cached; a re-run only re-solves cells whose loop IR, options or code
changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.driver import PipelineResult
from ..exec.cache import ScheduleCache
from ..exec.cells import Cell, CellResult
from ..exec.runner import ExecEngine
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000
from ..most.scheduler import MostOptions, MostResult
from ..pipeline.overhead import pipeline_overhead
from ..sim.layout import DataLayout
from ..sim.perf import simulate_pipelined, simulate_sequential_body
from ..workloads.livermore import LONG_TRIPS, SHORT_TRIPS, livermore_kernels
from ..workloads.spec92 import Benchmark, spec92_suite
from .metrics import geometric_mean, weighted_relative_time
from .report import Table, bar_chart


@dataclass
class ExperimentConfig:
    """Shared knobs for all experiments."""

    machine: Optional[MachineDescription] = None
    seed: int = 0
    # ILP budget per loop; the paper used 3 minutes, benchmarks use less.
    most_time_limit: float = 10.0
    most_engine: str = "scipy"
    most_priority_branching: bool = False  # the bnb engine uses it; HiGHS ignores
    most_max_ops: int = 61  # the largest optimal schedule the study found
    # Parallel execution and caching (repro.exec).
    jobs: int = 1
    cache_dir: Optional[str] = None  # None = no on-disk cache
    cell_timeout: Optional[float] = None  # hard per-cell deadline (worker-side)
    progress: Optional[Callable[[int, int, Cell, CellResult], None]] = None

    def resolved_machine(self) -> MachineDescription:
        return self.machine if self.machine is not None else r8000()

    def most_options(self, fallback: bool = True) -> MostOptions:
        return MostOptions(
            time_limit=self.most_time_limit,
            engine=self.most_engine,
            priority_branching=self.most_priority_branching,
            max_ops=self.most_max_ops,
            fallback=fallback,
        )

    def most_cell_options(self, fallback: bool = True, **overrides: Any) -> Dict[str, Any]:
        """The MOST options of :meth:`most_options` as a cell-options dict."""
        options: Dict[str, Any] = {
            "time_limit": self.most_time_limit,
            "engine": self.most_engine,
            "priority_branching": self.most_priority_branching,
            "max_ops": self.most_max_ops,
            "fallback": fallback,
        }
        options.update(overrides)
        return options

    def engine(self) -> ExecEngine:
        """The cell engine every experiment runs its batch through."""
        return ExecEngine(
            jobs=self.jobs,
            cache=ScheduleCache(self.cache_dir) if self.cache_dir else None,
            default_timeout=self.cell_timeout,
            progress=self.progress,
            machine=self.resolved_machine(),
        )

    def run_cells(self, cells: Sequence[Cell]) -> Dict[Cell, CellResult]:
        return self.engine().run(cells)


@dataclass
class ExperimentResult:
    name: str
    table: Table
    chart: str = ""
    summary: Dict[str, float] = field(default_factory=dict)
    # Every cell measurement behind the table, for BENCH_<name>.json emission.
    cells: List[CellResult] = field(default_factory=list)

    def formatted(self) -> str:
        parts = [self.table.formatted()]
        if self.chart:
            parts.append(self.chart)
        if self.summary:
            parts.append(
                "summary: " + ", ".join(f"{k}={v:.4g}" for k, v in self.summary.items())
            )
        return "\n\n".join(parts)


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
def _pipelined_cycles(
    result: PipelineResult,
    machine: MachineDescription,
    trips: Optional[int] = None,
    seed: int = 0,
) -> float:
    """Simulated cycles of a heuristic/ILP pipelining result (with the
    fill/drain overhead included).  Retained for direct driver results;
    batched experiments read the same quantity off their cells."""
    if not result.success:
        raise ValueError(f"loop {result.original.name!r} failed to pipeline")
    layout = DataLayout(result.loop, trip_count=trips or result.loop.trip_count, seed=seed)
    overhead = pipeline_overhead(result.schedule, result.allocation, machine)
    report = simulate_pipelined(
        result.schedule, layout, machine, trips=trips, overhead=overhead
    )
    return report.cycles


def _most_cycles(
    result: MostResult,
    machine: MachineDescription,
    trips: Optional[int] = None,
    seed: int = 0,
) -> float:
    layout = DataLayout(result.loop, trip_count=trips or result.loop.trip_count, seed=seed)
    overhead = pipeline_overhead(result.schedule, result.allocation, machine)
    report = simulate_pipelined(
        result.schedule, layout, machine, trips=trips, overhead=overhead
    )
    return report.cycles


def _baseline_cycles(
    loop: Loop, machine: MachineDescription, trips: Optional[int] = None, seed: int = 0
) -> float:
    from ..baseline.list_scheduler import list_schedule

    schedule = list_schedule(loop, machine)
    layout = DataLayout(loop, trip_count=trips or loop.trip_count, seed=seed)
    return simulate_sequential_body(schedule, layout, machine, trips=trips).cycles


def _benchmark_relative_time(
    bench: Benchmark,
    cycles: Dict[str, float],
    reference: Dict[str, float],
) -> float:
    """T/T_ref for one benchmark from per-loop cycle counts."""
    return weighted_relative_time(
        [loop.weight for loop in bench.loops],
        [cycles[loop.name] for loop in bench.loops],
        [reference[loop.name] for loop in bench.loops],
    )


def _spec_key(bench: Benchmark, loop: Loop) -> str:
    return f"spec92:{bench.name}/{loop.name}"


def _cycles(result: CellResult, trips: Optional[int] = None) -> float:
    """Simulated cycles of a cell, insisting the cell actually succeeded."""
    if result.error is not None:
        raise RuntimeError(
            f"cell {result.loop} × {result.scheduler} failed:\n{result.error}"
        )
    if not result.success:
        raise ValueError(f"loop {result.loop!r} failed to pipeline ({result.scheduler})")
    return result.cycles(trips)


class _Batch:
    """Cell batch builder: experiments enumerate, then run, then look up."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.cells: Dict[Tuple, Cell] = {}
        self.results: Dict[Cell, CellResult] = {}

    def add(
        self,
        tag: Tuple,
        loop_key: str,
        scheduler: str,
        options: Optional[Dict[str, Any]] = None,
        trips: Tuple[int, ...] = (),
    ) -> None:
        self.cells[tag] = Cell.make(
            loop_key,
            scheduler,
            options,
            trips=trips,
            seed=self.config.seed,
            timeout=self.config.cell_timeout,
        )

    def run(self) -> None:
        self.results = self.config.run_cells(list(self.cells.values()))

    def __getitem__(self, tag: Tuple) -> CellResult:
        return self.results[self.cells[tag]]

    def cycles(self, tag: Tuple, trips: Optional[int] = None) -> float:
        return _cycles(self[tag], trips)

    def all_results(self) -> List[CellResult]:
        return list(self.results.values())


# ----------------------------------------------------------------------
# Figure 2 — software pipelining on vs off across SPEC92 fp
# ----------------------------------------------------------------------
def fig2_pipelining_effectiveness(
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    """Pipelined vs list-scheduled performance per benchmark (Figure 2).

    The paper reports SPECmarks with the pipeliner enabled and disabled;
    we report the speedup of enabled over disabled — the figure's visual
    content.  Paper: >35% geomean improvement, every benchmark >= 1.0x.
    """
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    suite = spec92_suite(machine)
    batch = _Batch(config)
    for bench in suite:
        for loop in bench.loops:
            batch.add(("sgi", loop.name), _spec_key(bench, loop), "sgi")
            batch.add(("base", loop.name), _spec_key(bench, loop), "baseline")
    batch.run()

    table = Table(
        "Figure 2: software pipelining enabled vs disabled (SPEC92 fp)",
        ["benchmark", "pipelined cyc/it (wtd)", "baseline cyc/it (wtd)", "speedup"],
    )
    speedups: List[Tuple[str, float]] = []
    for bench in suite:
        pipe_cycles = {l.name: batch.cycles(("sgi", l.name)) for l in bench.loops}
        base_cycles = {l.name: batch.cycles(("base", l.name)) for l in bench.loops}
        rel = _benchmark_relative_time(bench, pipe_cycles, base_cycles)
        speedup_val = 1.0 / rel
        trips = {loop.name: loop.trip_count for loop in bench.loops}
        wtd_pipe = sum(
            loop.weight * pipe_cycles[loop.name] / trips[loop.name] for loop in bench.loops
        )
        wtd_base = sum(
            loop.weight * base_cycles[loop.name] / trips[loop.name] for loop in bench.loops
        )
        table.add(bench.name, wtd_pipe, wtd_base, speedup_val)
        speedups.append((bench.name, speedup_val))
    gmean = geometric_mean([s for _, s in speedups])
    table.add("geometric mean", "", "", gmean)
    chart = bar_chart(
        "speedup from software pipelining (Figure 2)", speedups, reference=1.0, unit="x"
    )
    return ExperimentResult(
        name="fig2",
        table=table,
        cells=batch.all_results(),
        chart=chart,
        summary={"geomean_speedup": gmean, "improvement_pct": (gmean - 1.0) * 100},
    )


# ----------------------------------------------------------------------
# Figure 3 — single priority heuristic vs all four
# ----------------------------------------------------------------------
def fig3_priority_heuristics(
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    """Each scheduling priority alone, as a ratio over the all-four
    configuration (Figure 3).  Paper: no single heuristic wins everywhere;
    three of the four are needed to win at least one benchmark."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    suite = spec92_suite(machine)
    orders = ("FDMS", "FDNMS", "HMS", "RHMS")
    batch = _Batch(config)
    for bench in suite:
        for loop in bench.loops:
            key = _spec_key(bench, loop)
            batch.add(("ref", loop.name), key, "sgi")
            batch.add(("base", loop.name), key, "baseline")
            for order in orders:
                batch.add((order, loop.name), key, "sgi", {"orders": [order]})
    batch.run()

    table = Table(
        "Figure 3: single priority-list heuristic vs all four (ratio, higher is better)",
        ["benchmark"] + list(orders),
    )
    best_counts = {name: 0 for name in orders}
    rows: Dict[str, List[float]] = {}
    for bench in suite:
        reference = {l.name: batch.cycles(("ref", l.name)) for l in bench.loops}
        ratios: List[float] = []
        for order in orders:
            cycles: Dict[str, float] = {}
            for loop in bench.loops:
                res = batch[(order, loop.name)]
                if res.success:
                    cycles[loop.name] = _cycles(res)
                else:
                    # A heuristic that cannot schedule falls back to the
                    # list scheduler, as the compiler would.
                    cycles[loop.name] = batch.cycles(("base", loop.name))
            rel = _benchmark_relative_time(bench, cycles, reference)
            ratios.append(1.0 / rel)
        rows[bench.name] = ratios
        table.add(bench.name, *ratios)
        best = max(range(len(orders)), key=lambda i: ratios[i])
        best_counts[orders[best]] += 1
    heuristics_needed = sum(1 for count in best_counts.values() if count > 0)
    table.notes.append(
        "per-benchmark best heuristic counts: "
        + ", ".join(f"{k}={v}" for k, v in best_counts.items())
    )
    chart = bar_chart(
        "worst single-heuristic ratio per benchmark (Figure 3)",
        [(name, min(r)) for name, r in rows.items()],
        reference=1.0,
    )
    return ExperimentResult(
        name="fig3",
        table=table,
        cells=batch.all_results(),
        chart=chart,
        summary={
            "heuristics_winning_somewhere": float(heuristics_needed),
            "min_single_ratio": min(min(r) for r in rows.values()),
        },
    )


# ----------------------------------------------------------------------
# Figure 4 — memory-bank heuristics on vs off
# ----------------------------------------------------------------------
def fig4_membank_effectiveness(
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    """Memory-bank pairing enabled over disabled (Figure 4).  Paper:
    alvinn and mdljdp2 stand out; the rest sit near 1.0."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    suite = spec92_suite(machine)
    batch = _Batch(config)
    for bench in suite:
        for loop in bench.loops:
            key = _spec_key(bench, loop)
            batch.add(("on", loop.name), key, "sgi", {"enable_membank": True})
            batch.add(("off", loop.name), key, "sgi", {"enable_membank": False})
    batch.run()

    table = Table(
        "Figure 4: memory bank heuristics enabled / disabled (performance ratio)",
        ["benchmark", "ratio"],
    )
    entries: List[Tuple[str, float]] = []
    for bench in suite:
        on = {l.name: batch.cycles(("on", l.name)) for l in bench.loops}
        off = {l.name: batch.cycles(("off", l.name)) for l in bench.loops}
        ratio = 1.0 / _benchmark_relative_time(bench, on, off)
        table.add(bench.name, ratio)
        entries.append((bench.name, ratio))
    gmean = geometric_mean([r for _, r in entries])
    table.add("geometric mean", gmean)
    chart = bar_chart("memory-bank heuristic speedup (Figure 4)", entries, reference=1.0, unit="x")
    return ExperimentResult(
        name="fig4",
        table=table,
        cells=batch.all_results(),
        chart=chart,
        summary={"geomean": gmean, "max_ratio": max(r for _, r in entries)},
    )


# ----------------------------------------------------------------------
# Figure 5 — ILP vs heuristic, with and without bank pairing
# ----------------------------------------------------------------------
def fig5_ilp_vs_heuristic(
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    """Relative performance of ILP-scheduled code over MIPSpro, against
    the heuristic both with and without its memory-bank pairing
    (Figure 5).  Paper: heuristic with pairing wins by ~8% geomean; with
    pairing disabled the two are within a few percent."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    suite = spec92_suite(machine)
    batch = _Batch(config)
    for bench in suite:
        for loop in bench.loops:
            key = _spec_key(bench, loop)
            batch.add(("bank", loop.name), key, "sgi", {"enable_membank": True})
            batch.add(("nobank", loop.name), key, "sgi", {"enable_membank": False})
            batch.add(("ilp", loop.name), key, "most", config.most_cell_options())
    batch.run()

    table = Table(
        "Figure 5: ILP performance relative to MIPSpro",
        ["benchmark", "vs MIPSpro+bank", "vs MIPSpro-nobank", "ILP fallbacks"],
    )
    solid: List[Tuple[str, float]] = []
    striped: List[Tuple[str, float]] = []
    for bench in suite:
        sgi_bank = {l.name: batch.cycles(("bank", l.name)) for l in bench.loops}
        sgi_nobank = {l.name: batch.cycles(("nobank", l.name)) for l in bench.loops}
        ilp = {l.name: batch.cycles(("ilp", l.name)) for l in bench.loops}
        fallbacks = sum(int(batch[("ilp", l.name)].fallback) for l in bench.loops)
        rel_bank = 1.0 / _benchmark_relative_time(bench, ilp, sgi_bank)
        rel_nobank = 1.0 / _benchmark_relative_time(bench, ilp, sgi_nobank)
        table.add(bench.name, rel_bank, rel_nobank, fallbacks)
        solid.append((bench.name, rel_bank))
        striped.append((bench.name, rel_nobank))
    gmean_bank = geometric_mean([v for _, v in solid])
    gmean_nobank = geometric_mean([v for _, v in striped])
    table.add("geometric mean", gmean_bank, gmean_nobank, "")
    chart = "\n\n".join(
        [
            bar_chart("ILP / MIPSpro+bank (Figure 5, solid)", solid, reference=1.0),
            bar_chart("ILP / MIPSpro-nobank (Figure 5, striped)", striped, reference=1.0),
        ]
    )
    return ExperimentResult(
        name="fig5",
        table=table,
        cells=batch.all_results(),
        chart=chart,
        summary={
            "geomean_vs_bank": gmean_bank,
            "heuristic_advantage_pct": (1.0 / gmean_bank - 1.0) * 100,
            "geomean_vs_nobank": gmean_nobank,
        },
    )


# ----------------------------------------------------------------------
# Figure 6 — Livermore kernels, short and long trip counts
# ----------------------------------------------------------------------
def fig6_livermore(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """ILP vs MIPSpro on each Livermore kernel at short and long trip
    counts (Figure 6).  Paper: the SGI scheduler wins nearly everywhere
    at both lengths."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    kernels = list(livermore_kernels(machine))
    batch = _Batch(config)
    for number, loop in enumerate(kernels, start=1):
        key = f"livermore:{loop.name}"
        trips = (SHORT_TRIPS[number], LONG_TRIPS[number])
        batch.add(("sgi", loop.name), key, "sgi", trips=trips)
        batch.add(("ilp", loop.name), key, "most", config.most_cell_options(), trips=trips)
    batch.run()

    table = Table(
        "Figure 6: ILP / MIPSpro relative performance per Livermore kernel",
        ["kernel", "short trips", "ratio@short", "long trips", "ratio@long"],
    )
    short_entries: List[Tuple[str, float]] = []
    long_entries: List[Tuple[str, float]] = []
    for number, loop in enumerate(kernels, start=1):
        short, long_ = SHORT_TRIPS[number], LONG_TRIPS[number]
        ratios = []
        for trips in (short, long_):
            sgi_c = batch.cycles(("sgi", loop.name), trips)
            ilp_c = batch.cycles(("ilp", loop.name), trips)
            ratios.append(sgi_c / ilp_c)
        table.add(loop.name, short, ratios[0], long_, ratios[1])
        short_entries.append((loop.name, ratios[0]))
        long_entries.append((loop.name, ratios[1]))
    gmean_short = geometric_mean([r for _, r in short_entries])
    gmean_long = geometric_mean([r for _, r in long_entries])
    table.add("geometric mean", "", gmean_short, "", gmean_long)
    chart = "\n\n".join(
        [
            bar_chart("ILP/MIPSpro at short trip counts (Figure 6)", short_entries, reference=1.0),
            bar_chart("ILP/MIPSpro at long trip counts (Figure 6)", long_entries, reference=1.0),
        ]
    )
    return ExperimentResult(
        name="fig6",
        table=table,
        cells=batch.all_results(),
        chart=chart,
        summary={"geomean_short": gmean_short, "geomean_long": gmean_long},
    )


# ----------------------------------------------------------------------
# Figure 7 — static quality: registers and overhead, MIPSpro minus ILP
# ----------------------------------------------------------------------
def fig7_static_quality(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Second-order static measures per Livermore loop (Figure 7):
    difference (MIPSpro - ILP) in total registers used and in pipeline
    overhead cycles.  Paper: identical IIs everywhere; the heuristic uses
    fewer registers in 15/26 loops and less overhead in 12/26; for 16
    loops the lower-overhead schedule does not use fewer registers."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    kernels = list(livermore_kernels(machine))
    batch = _Batch(config)
    for loop in kernels:
        key = f"livermore:{loop.name}"
        batch.add(("sgi", loop.name), key, "sgi")
        batch.add(("ilp", loop.name), key, "most", config.most_cell_options())
    batch.run()

    table = Table(
        "Figure 7: MIPSpro minus ILP, registers and overhead cycles",
        ["kernel", "II sgi", "II ilp", "d(regs)", "d(overhead)"],
    )
    reg_entries: List[Tuple[str, float]] = []
    ovh_entries: List[Tuple[str, float]] = []
    identical_ii = 0
    sgi_fewer_regs = 0
    sgi_lower_ovh = 0
    uncorrelated = 0
    n = 0
    for loop in kernels:
        sgi = batch[("sgi", loop.name)]
        ilp = batch[("ilp", loop.name)]
        sgi_regs, ilp_regs = sgi.registers_used, ilp.registers_used
        sgi_ovh, ilp_ovh = sgi.overhead_cycles, ilp.overhead_cycles
        table.add(loop.name, sgi.ii, ilp.ii, sgi_regs - ilp_regs, sgi_ovh - ilp_ovh)
        reg_entries.append((loop.name, float(sgi_regs - ilp_regs)))
        ovh_entries.append((loop.name, float(sgi_ovh - ilp_ovh)))
        n += 1
        identical_ii += int(sgi.ii == ilp.ii)
        sgi_fewer_regs += int(sgi_regs < ilp_regs)
        sgi_lower_ovh += int(sgi_ovh < ilp_ovh)
        # "There is no clear correlation between register usage and
        # overhead": count loops where the measures differ but no single
        # scheduler strictly wins both.
        reg_winner = 0 if sgi_regs == ilp_regs else (1 if sgi_regs < ilp_regs else -1)
        ovh_winner = 0 if sgi_ovh == ilp_ovh else (1 if sgi_ovh < ilp_ovh else -1)
        if (reg_winner or ovh_winner) and reg_winner != ovh_winner:
            uncorrelated += 1
    table.notes.append(
        f"identical IIs: {identical_ii}/{n}; SGI fewer regs: {sgi_fewer_regs}/{n}; "
        f"SGI lower overhead: {sgi_lower_ovh}/{n}; overhead/register winners differ: {uncorrelated}/{n}"
    )
    return ExperimentResult(
        name="fig7",
        table=table,
        cells=batch.all_results(),
        chart="",
        summary={
            "identical_ii": float(identical_ii),
            "sgi_fewer_regs": float(sgi_fewer_regs),
            "sgi_lower_overhead": float(sgi_lower_ovh),
            "uncorrelated": float(uncorrelated),
            "loops": float(n),
        },
    )


# ----------------------------------------------------------------------
# Section 4.7 — compile-speed comparison
# ----------------------------------------------------------------------
def sec47_compile_speed(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Scheduler time, heuristic vs ILP, over the SPEC92-like corpus
    (Section 4.7).  Paper: 237 s vs 67,634 s — roughly 285x.

    The measured ratio scales with the ILP's per-loop budget (the paper
    allowed 3 minutes; benchmarks allow a few seconds), so two summaries
    are reported: the total ratio, and the ratio restricted to loops the
    ILP scheduled natively (no size/time fallback) — the like-for-like
    comparison the paper's 237 s vs 67,634 s makes.

    With the exec cache enabled, timings are the ones collected when each
    cell was first solved — re-runs reproduce, not re-measure.
    """
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    suite = spec92_suite(machine)
    batch = _Batch(config)
    for bench in suite:
        for loop in bench.loops:
            key = _spec_key(bench, loop)
            batch.add(("sgi", loop.name), key, "sgi")
            batch.add(("ilp", loop.name), key, "most", config.most_cell_options())
    batch.run()

    table = Table(
        "Section 4.7: scheduler time per benchmark (seconds)",
        ["benchmark", "heuristic", "ILP", "ratio", "ILP fallbacks"],
    )
    total_sgi = 0.0
    total_ilp = 0.0
    native_sgi = 0.0
    native_ilp = 0.0
    native_ratios: List[float] = []
    for bench in suite:
        sgi_t = 0.0
        ilp_t = 0.0
        fallbacks = 0
        for loop in bench.loops:
            sgi_cell = batch[("sgi", loop.name)]
            ilp_cell = batch[("ilp", loop.name)]
            sgi_t += sgi_cell.schedule_seconds
            # The ILP's charge includes model construction, which solver
            # stats undercount: take the larger of the two measures.
            loop_ilp_t = max(ilp_cell.schedule_seconds, ilp_cell.sched_wall_seconds)
            ilp_t += loop_ilp_t
            if ilp_cell.fallback:
                fallbacks += 1
            else:
                native_sgi += sgi_cell.schedule_seconds
                native_ilp += loop_ilp_t
                native_ratios.append(loop_ilp_t / max(sgi_cell.schedule_seconds, 1e-4))
        total_sgi += sgi_t
        total_ilp += ilp_t
        table.add(
            bench.name, sgi_t, ilp_t,
            (ilp_t / sgi_t) if sgi_t else float("inf"), fallbacks,
        )
    ratio = total_ilp / total_sgi if total_sgi else float("inf")
    native_ratio = native_ilp / native_sgi if native_sgi else float("inf")
    native_geomean = geometric_mean(native_ratios) if native_ratios else float("inf")
    table.add("total", total_sgi, total_ilp, ratio, "")
    table.notes.append(
        f"loops the ILP scheduled natively: heuristic {native_sgi:.2f}s vs "
        f"ILP {native_ilp:.2f}s (sum ratio {native_ratio:.1f}x, per-loop "
        f"geomean {native_geomean:.0f}x)"
    )
    return ExperimentResult(
        name="sec47",
        table=table,
        cells=batch.all_results(),
        summary={
            "sgi_seconds": total_sgi,
            "ilp_seconds": total_ilp,
            "slowdown": ratio,
            "native_slowdown": native_ratio,
            "native_geomean": native_geomean,
        },
    )


# ----------------------------------------------------------------------
# Section 5 — scalability: largest schedulable loop
# ----------------------------------------------------------------------
def sec5_scalability(
    config: Optional[ExperimentConfig] = None,
    sizes: Sequence[int] = (16, 28, 40, 52, 64, 80, 100, 116, 132, 150),
    per_loop_budget: float = 30.0,
) -> ExperimentResult:
    """Largest loop each technique schedules within a per-loop budget
    (Section 5).  Paper: 116 operations for the heuristics vs 61 for the
    optimal schedules."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    batch = _Batch(config)
    ilp_options = config.most_cell_options(
        fallback=False,
        time_limit=min(config.most_time_limit, per_loop_budget),
        max_ops=10_000,  # let size be limited by time, not fiat
    )
    for size in sizes:
        key = f"scaling:{size}"
        batch.add(("sgi", size), key, "sgi")
        batch.add(("ilp", size), key, "most", ilp_options)
    batch.run()

    table = Table(
        "Section 5: scalability over loop size",
        ["~ops", "actual ops", "SGI ok", "SGI s", "ILP ok (no fallback)", "ILP s"],
    )
    largest_sgi = 0
    largest_ilp = 0
    for size in sizes:
        sgi = batch[("sgi", size)]
        ilp = batch[("ilp", size)]
        # Charge the heuristic its scheduler time, not wall time: the
        # budget should measure the search, not machine contention.
        sgi_seconds = min(sgi.sched_wall_seconds, max(sgi.schedule_seconds, 1e-4))
        sgi_ok = sgi.success and sgi_seconds <= per_loop_budget
        ilp_seconds = max(ilp.schedule_seconds, ilp.sched_wall_seconds)
        ilp_ok = ilp.success and not ilp.fallback
        if sgi_ok:
            largest_sgi = max(largest_sgi, sgi.n_ops)
        if ilp_ok:
            largest_ilp = max(largest_ilp, ilp.n_ops)
        table.add(f"scale{size}", sgi.n_ops, sgi_ok, sgi_seconds, ilp_ok, ilp_seconds)
    table.notes.append(
        f"largest scheduled: SGI {largest_sgi} ops, ILP {largest_ilp} ops"
    )
    return ExperimentResult(
        name="sec5_scalability",
        table=table,
        cells=batch.all_results(),
        summary={"largest_sgi": float(largest_sgi), "largest_ilp": float(largest_ilp)},
    )


# ----------------------------------------------------------------------
# Section 5 — II parity and the backtracking anecdote
# ----------------------------------------------------------------------
def sec5_ii_parity(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """How often the optimal technique finds a lower II than the
    heuristic, and whether raising the heuristic's backtracking limit
    equalises it (Section 5).  Paper: exactly one loop, equalised by a
    modest backtracking increase."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    pool: List[Tuple[str, str]] = [
        (loop.name, f"livermore:{loop.name}") for loop in livermore_kernels(machine)
    ]
    for bench in spec92_suite(machine):
        pool.extend(
            (loop.name, _spec_key(bench, loop))
            for loop in bench.loops
            if loop.n_ops <= config.most_max_ops
        )
    batch = _Batch(config)
    for name, key in pool:
        batch.add(("sgi", name), key, "sgi")
        batch.add(("ilp", name), key, "most", config.most_cell_options())
    batch.run()

    # Second phase, only for loops the ILP actually beat: the heuristic
    # with ten times the backtracking budget.
    boosted_batch = _Batch(config)
    wins: List[Tuple[str, str]] = []
    for name, key in pool:
        sgi, ilp = batch[("sgi", name)], batch[("ilp", name)]
        if not (sgi.success and ilp.success):
            continue
        if ilp.fallback or ilp.ii >= sgi.ii:
            continue
        wins.append((name, key))
        boosted_batch.add(
            ("boost", name), key, "sgi",
            {"bnb": {"max_backtracks": 4000, "max_placements": 2_500_000}},
        )
    boosted_batch.run()

    table = Table(
        "Section 5: II comparison, heuristic vs optimal",
        ["loop", "MinII", "SGI II", "ILP II", "SGI II (10x backtracking)"],
    )
    equalised = 0
    for name, key in wins:
        sgi, ilp = batch[("sgi", name)], batch[("ilp", name)]
        boosted = boosted_batch[("boost", name)]
        boosted_ii = boosted.ii if boosted.success else None
        if boosted_ii is not None and boosted_ii <= ilp.ii:
            equalised += 1
        table.add(name, sgi.min_ii, sgi.ii, ilp.ii, boosted_ii)
    if not wins:
        table.notes.append("no loop where the optimal technique beat the heuristic's II")
    return ExperimentResult(
        name="sec5_ii_parity",
        table=table,
        cells=batch.all_results() + boosted_batch.all_results(),
        summary={"ilp_ii_wins": float(len(wins)), "equalised_by_backtracking": float(equalised)},
    )


# ----------------------------------------------------------------------
# Extension — three-way showdown with iterative modulo scheduling [Rau94]
# ----------------------------------------------------------------------
def ext_rau_comparison(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Extend the showdown with the scheduler the paper's epigraph cites:
    Rau's iterative modulo scheduling.  Reports II and scheduling effort
    for all three techniques across the Livermore kernels."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    kernels = list(livermore_kernels(machine))
    batch = _Batch(config)
    for loop in kernels:
        key = f"livermore:{loop.name}"
        batch.add(("sgi", loop.name), key, "sgi")
        batch.add(("rau", loop.name), key, "rau")
        batch.add(("ilp", loop.name), key, "most", config.most_cell_options())
    batch.run()

    table = Table(
        "Extension: SGI branch-and-bound vs Rau94 iterative vs MOST ILP",
        ["kernel", "MinII", "SGI II", "Rau II", "ILP II", "SGI s", "Rau s", "ILP s"],
    )
    summary = {
        "rau_matches_sgi": 0.0,
        "rau_better": 0.0,
        "rau_worse": 0.0,
        "rau_seconds": 0.0,
        "sgi_seconds": 0.0,
        "ilp_seconds": 0.0,
    }
    for loop in kernels:
        sgi = batch[("sgi", loop.name)]
        rau = batch[("rau", loop.name)]
        ilp = batch[("ilp", loop.name)]
        table.add(
            loop.name,
            sgi.min_ii,
            sgi.ii,
            rau.ii,
            ilp.ii,
            sgi.schedule_seconds,
            rau.schedule_seconds,
            ilp.schedule_seconds,
        )
        if rau.ii == sgi.ii:
            summary["rau_matches_sgi"] += 1
        elif rau.ii is not None and sgi.ii is not None and rau.ii < sgi.ii:
            summary["rau_better"] += 1
        else:
            summary["rau_worse"] += 1
        summary["rau_seconds"] += rau.schedule_seconds
        summary["sgi_seconds"] += sgi.schedule_seconds
        summary["ilp_seconds"] += ilp.schedule_seconds
    return ExperimentResult(
        name="ext_rau", table=table, summary=summary, cells=batch.all_results()
    )


# ----------------------------------------------------------------------
# Extension — the §5 proposal: optimise loop overhead directly in the ILP
# ----------------------------------------------------------------------
def ext_overhead_objective(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """The paper's closing suggestion: "Perhaps an ILP formulation can be
    made that optimizes loop overhead more directly than by optimizing
    register usage."  Compares MOST with the buffer objective against
    MOST minimising the stage count, on the Figure 7 metric."""
    config = config or ExperimentConfig()
    machine = config.resolved_machine()
    kernels = list(livermore_kernels(machine))
    batch = _Batch(config)
    for loop in kernels:
        key = f"livermore:{loop.name}"
        batch.add(("buf", loop.name), key, "most", config.most_cell_options())
        batch.add(
            ("ovh", loop.name), key, "most",
            config.most_cell_options(objective="overhead"),
        )
    batch.run()

    table = Table(
        "Extension: ILP objective = buffers (paper) vs loop overhead (§5 proposal)",
        ["kernel", "II", "overhead (buffers obj)", "overhead (stage obj)", "regs b/o"],
    )
    summary = {"improved": 0.0, "unchanged": 0.0, "regressed": 0.0, "total_saved": 0.0}
    for loop in kernels:
        buf = batch[("buf", loop.name)]
        ovh = batch[("ovh", loop.name)]
        if buf.ii != ovh.ii:
            continue  # compare like with like only
        o_buf, o_ovh = buf.overhead_cycles, ovh.overhead_cycles
        regs = f"{buf.registers_used}/{ovh.registers_used}"
        table.add(loop.name, buf.ii, o_buf, o_ovh, regs)
        if o_ovh < o_buf:
            summary["improved"] += 1
        elif o_ovh == o_buf:
            summary["unchanged"] += 1
        else:
            summary["regressed"] += 1
        summary["total_saved"] += o_buf - o_ovh
    return ExperimentResult(
        name="ext_overhead", table=table, summary=summary, cells=batch.all_results()
    )
