"""Corpus statistics: what the workload suites look like to a scheduler.

Summarises, per loop, the quantities that determine pipelining behaviour —
operation mix, memory reference count, recurrence structure, ResMII/RecMII
— so workload changes can be reviewed at a glance and documentation stays
honest about what each benchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.minii import min_ii, rec_mii, res_mii
from ..ir.loop import Loop
from ..machine.descriptions import MachineDescription, r8000
from ..workloads.livermore import livermore_kernels
from ..workloads.spec92 import spec92_suite
from .report import Table


@dataclass(frozen=True)
class LoopProfile:
    """Scheduler-relevant shape of one loop."""

    name: str
    n_ops: int
    n_mem: int
    n_indirect: int
    n_fp: int
    n_recurrences: int
    res_mii: int
    rec_mii: int
    min_ii: int
    trip_count: int

    @property
    def bound(self) -> str:
        """Which lower bound dominates: resources or recurrences."""
        if self.rec_mii > self.res_mii:
            return "recurrence"
        if self.res_mii > self.rec_mii:
            return "resource"
        return "balanced"


def profile_loop(loop: Loop, machine: Optional[MachineDescription] = None) -> LoopProfile:
    machine = machine if machine is not None else r8000()
    mem_ops = loop.memory_ops()
    return LoopProfile(
        name=loop.name,
        n_ops=loop.n_ops,
        n_mem=len(mem_ops),
        n_indirect=sum(1 for op in mem_ops if not op.mem.is_direct),
        n_fp=sum(1 for op in loop.ops if op.opclass.is_float),
        n_recurrences=len(loop.ddg.nontrivial_sccs()),
        res_mii=res_mii(loop, machine),
        rec_mii=rec_mii(loop),
        min_ii=min_ii(loop, machine),
        trip_count=loop.trip_count,
    )


def corpus_table(
    loops: List[Loop], title: str, machine: Optional[MachineDescription] = None
) -> Table:
    table = Table(
        title,
        ["loop", "ops", "mem", "ind", "fp", "recs", "ResMII", "RecMII", "MinII", "bound", "trips"],
    )
    for loop in loops:
        p = profile_loop(loop, machine)
        table.add(
            p.name, p.n_ops, p.n_mem, p.n_indirect, p.n_fp, p.n_recurrences,
            p.res_mii, p.rec_mii, p.min_ii, p.bound, p.trip_count,
        )
    return table


def livermore_profile(machine: Optional[MachineDescription] = None) -> Table:
    machine = machine if machine is not None else r8000()
    return corpus_table(livermore_kernels(machine), "Livermore kernel corpus", machine)


def spec92_profile(machine: Optional[MachineDescription] = None) -> Table:
    machine = machine if machine is not None else r8000()
    loops = [loop for bench in spec92_suite(machine) for loop in bench.loops]
    return corpus_table(loops, "SPEC92fp-like loop corpus", machine)
