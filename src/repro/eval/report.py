"""ASCII rendering of experiment results: tables and horizontal bars.

The paper's figures are horizontal bar charts (SPECmarks per benchmark,
performance ratios per kernel); the harness renders the same shape in
text so every table AND figure has a directly comparable artefact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


#: ``Table.formatted`` clips cells beyond this width so one pathological
#: value (a long error string, an un-truncated option blob) cannot blow
#: up every column of the ASCII rendering.
MAX_CELL_WIDTH = 48


def _fmt_cell(cell, max_width: int = MAX_CELL_WIDTH) -> str:
    """One cell as display text: floats to 3 places, control characters
    escaped (a stray newline would break the column grid), overlong
    values clipped with an ellipsis."""
    if isinstance(cell, float):
        text = f"{cell:.3f}"
    else:
        text = str(cell)
    if any(ch in text for ch in "\n\r\t"):
        text = text.replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t")
    if max_width and len(text) > max_width:
        text = text[: max_width - 1] + "…"
    return text


@dataclass
class Table:
    """A simple column-formatted table."""

    title: str
    headers: List[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *row) -> None:
        self.rows.append(row)

    def to_rows(self, max_width: int = 0) -> List[List[str]]:
        """The body as display strings (the HTML renderer's accessor —
        same cell formatting as :meth:`formatted`, no re-parsing of the
        ASCII form).  ``max_width=0`` disables clipping."""
        return [[_fmt_cell(c, max_width) for c in row] for row in self.rows]

    def formatted(self, max_cell_width: int = MAX_CELL_WIDTH) -> str:
        cells = self.to_rows(max_cell_width)
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, c in enumerate(row):
                widths[i] = max(widths[i], len(c))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def bar_chart(
    title: str,
    entries: Sequence[Tuple[str, float]],
    width: int = 50,
    reference: Optional[float] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one labelled bar per entry.

    ``reference`` draws a marker column (e.g. ratio 1.0) when it falls
    inside the plotted range.
    """
    if not entries:
        return f"{title}\n(no data)"
    label_w = max(len(name) for name, _ in entries)
    top = max(value for _, value in entries)
    top = max(top, reference or 0.0, 1e-12)
    lines = [title, "-" * len(title)]
    ref_col = None
    if reference is not None and reference <= top:
        ref_col = int(round(reference / top * width))
    for name, value in entries:
        length = int(round(value / top * width))
        bar = list("#" * length + " " * (width - length))
        if ref_col is not None and 0 <= ref_col < width:
            bar[ref_col] = "|" if bar[ref_col] == " " else bar[ref_col]
        lines.append(f"{name.rjust(label_w)} {''.join(bar)} {value:.3f}{unit}")
    if reference is not None:
        lines.append(f"{' ' * label_w} (| marks {reference:g})")
    return "\n".join(lines)
