"""Experiment harness: metrics, per-figure drivers, report rendering."""

from .experiments import (
    ExperimentConfig,
    ExperimentResult,
    ext_overhead_objective,
    ext_rau_comparison,
    fig2_pipelining_effectiveness,
    fig3_priority_heuristics,
    fig4_membank_effectiveness,
    fig5_ilp_vs_heuristic,
    fig6_livermore,
    fig7_static_quality,
    sec47_compile_speed,
    sec5_ii_parity,
    sec5_scalability,
)
from .corpus import LoopProfile, corpus_table, livermore_profile, profile_loop, spec92_profile
from .metrics import geometric_mean, speedup, weighted_relative_time
from .report import Table, bar_chart

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "Table",
    "bar_chart",
    "fig2_pipelining_effectiveness",
    "fig3_priority_heuristics",
    "fig4_membank_effectiveness",
    "fig5_ilp_vs_heuristic",
    "fig6_livermore",
    "fig7_static_quality",
    "ext_overhead_objective",
    "ext_rau_comparison",
    "LoopProfile",
    "corpus_table",
    "geometric_mean",
    "livermore_profile",
    "profile_loop",
    "spec92_profile",
    "sec47_compile_speed",
    "sec5_ii_parity",
    "sec5_scalability",
    "speedup",
    "weighted_relative_time",
]
