"""A small DSL for constructing loop bodies with dependence graphs.

Example — a single-precision dot product (the alvinn-style kernel of
Section 4.3)::

    b = LoopBuilder("sdot", machine=r8000(), trip_count=1000)
    s = b.recurrence("s")
    x = b.load("x", offset=0, stride=4, width=4)
    y = b.load("y", offset=0, stride=4, width=4)
    t = b.fmul(x, y)
    s.close(b.fadd(t, s.use()))
    b.live_out_value(s)
    loop = b.build()

The builder records def-use flow arcs (with iteration distances for
recurrences), runs memory dependence analysis, and returns a checked
:class:`~repro.ir.loop.Loop`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from typing import TYPE_CHECKING

from .ddg import DDG, Dependence, DepKind

if TYPE_CHECKING:  # avoid a circular import at runtime (machine uses the IR)
    from ..machine.descriptions import MachineDescription
from .loop import Loop
from .memdep import memory_dependences
from .operations import MemRef, OpClass, Operation


@dataclass(frozen=True)
class Value:
    """A virtual register produced inside the loop or live on entry."""

    name: str
    producer: Optional[int]  # op index, or None for live-in values


@dataclass(frozen=True)
class CarriedUse:
    """A use of a recurrence's value from ``distance`` iterations ago."""

    name: str
    distance: int


Operand = Union[Value, CarriedUse]


class Recurrence:
    """A loop-carried virtual register.

    ``use()`` reads the value computed ``distance`` iterations ago;
    ``close(v)`` declares which operation computes the next iteration's
    value.  The initial value enters the loop live-in.
    """

    def __init__(self, builder: "LoopBuilder", name: str):
        self._builder = builder
        self.name = name
        self.closing_op: Optional[int] = None

    def use(self, distance: int = 1) -> CarriedUse:
        if distance < 1:
            raise ValueError(f"recurrence {self.name!r}: carried distance must be >= 1")
        return CarriedUse(self.name, distance)

    def close(self, value: Value) -> None:
        if self.closing_op is not None:
            raise ValueError(f"recurrence {self.name!r} closed twice")
        if value.producer is None:
            raise ValueError(f"recurrence {self.name!r} must be closed with a computed value")
        self._builder._close_recurrence(self, value)
        self.closing_op = value.producer


class LoopBuilder:
    """Incrementally builds a :class:`Loop`."""

    def __init__(
        self,
        name: str,
        machine: Optional["MachineDescription"] = None,
        trip_count: int = 100,
        weight: float = 1.0,
    ):
        self.name = name
        if machine is None:
            from ..machine.descriptions import r8000

            machine = r8000()
        self.machine = machine
        self.trip_count = trip_count
        self.weight = weight
        self._ops: List[Operation] = []
        self._arcs: List[Dependence] = []
        self._live_in: Set[str] = set()
        self._live_out: Set[str] = set()
        self._recurrences: Dict[str, Recurrence] = {}
        self._pending_carried: List[Tuple[int, CarriedUse]] = []  # (user op, use)
        self._alias_groups: List[Set[int]] = []
        self._known_parity: Dict[str, int] = {}
        self._fresh = 0

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def invariant(self, name: str) -> Value:
        """Declare a loop-invariant input value."""
        self._live_in.add(name)
        return Value(name, None)

    def recurrence(self, name: str) -> Recurrence:
        if name in self._recurrences:
            raise ValueError(f"recurrence {name!r} already declared")
        rec = Recurrence(self, name)
        self._recurrences[name] = rec
        self._live_in.add(name)  # the initial value flows in
        return rec

    def live_out_value(self, value: Union[Value, Recurrence]) -> None:
        self._live_out.add(value.name)

    def _fresh_name(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def op(
        self,
        opcode: str,
        opclass: OpClass,
        srcs: Sequence[Operand] = (),
        mem: Optional[MemRef] = None,
        produces: bool = True,
        dest: Optional[str] = None,
    ) -> Value:
        """Append an operation; returns the produced value (if any)."""
        index = len(self._ops)
        src_names: List[str] = []
        for operand in srcs:
            if isinstance(operand, Recurrence):
                # Reading a closed recurrence means this iteration's value.
                if operand.closing_op is None:
                    raise ValueError(
                        f"recurrence {operand.name!r} read before close(); "
                        "use .use() for the carried value"
                    )
                operand = Value(operand.name, operand.closing_op)
            if (
                isinstance(operand, Value)
                and operand.producer is not None
                and operand.name not in self._ops[operand.producer].dests
            ):
                # The producing op was renamed (a recurrence close); follow it.
                operand = Value(self._ops[operand.producer].dests[0], operand.producer)
            src_names.append(operand.name)
            if isinstance(operand, CarriedUse):
                self._pending_carried.append((index, operand))
            elif operand.producer is not None:
                producer_op = self._ops[operand.producer]
                self._arcs.append(
                    Dependence(
                        src=operand.producer,
                        dst=index,
                        latency=self.machine.latency(producer_op.opclass),
                        omega=0,
                        kind=DepKind.FLOW,
                        value=operand.name,
                    )
                )
            else:
                self._live_in.add(operand.name)
        dests: Tuple[str, ...] = ()
        if produces:
            dests = (dest or self._fresh_name("v"),)
        operation = Operation(
            index=index,
            opcode=opcode,
            opclass=opclass,
            dests=dests,
            srcs=tuple(src_names),
            mem=mem,
        )
        self._ops.append(operation)
        return Value(dests[0], index) if produces else Value("", index)

    # Convenience wrappers -------------------------------------------------
    def load(
        self,
        base: str,
        offset: Optional[int] = 0,
        stride: int = 8,
        width: int = 8,
        dest: Optional[str] = None,
    ) -> Value:
        mem = MemRef(base=base, offset=offset, stride=stride, width=width, is_store=False)
        return self.op("load", OpClass.LOAD, mem=mem, dest=dest)

    def store(
        self,
        base: str,
        value: Operand,
        offset: Optional[int] = 0,
        stride: int = 8,
        width: int = 8,
    ) -> Value:
        mem = MemRef(base=base, offset=offset, stride=stride, width=width, is_store=True)
        return self.op("store", OpClass.STORE, srcs=(value,), mem=mem, produces=False)

    def fadd(self, a: Operand, b: Operand, dest: Optional[str] = None) -> Value:
        return self.op("fadd", OpClass.FADD, srcs=(a, b), dest=dest)

    def fsub(self, a: Operand, b: Operand, dest: Optional[str] = None) -> Value:
        return self.op("fsub", OpClass.FADD, srcs=(a, b), dest=dest)

    def fmul(self, a: Operand, b: Operand, dest: Optional[str] = None) -> Value:
        return self.op("fmul", OpClass.FMUL, srcs=(a, b), dest=dest)

    def fmadd(self, a: Operand, b: Operand, c: Operand, dest: Optional[str] = None) -> Value:
        """Fused multiply-add: ``a * b + c``."""
        return self.op("fmadd", OpClass.FMADD, srcs=(a, b, c), dest=dest)

    def fdiv(self, a: Operand, b: Operand, dest: Optional[str] = None) -> Value:
        return self.op("fdiv", OpClass.FDIV, srcs=(a, b), dest=dest)

    def fsqrt(self, a: Operand, dest: Optional[str] = None) -> Value:
        return self.op("fsqrt", OpClass.FSQRT, srcs=(a,), dest=dest)

    def fcmp(self, a: Operand, b: Operand, dest: Optional[str] = None) -> Value:
        return self.op("fcmp", OpClass.FCMP, srcs=(a, b), dest=dest)

    def select(self, cond: Operand, a: Operand, b: Operand, dest: Optional[str] = None) -> Value:
        """Conditional move, as produced by if-conversion (Section 2.1)."""
        return self.op("fmov", OpClass.FMOV, srcs=(cond, a, b), dest=dest)

    def iadd(self, a: Operand, b: Operand, dest: Optional[str] = None) -> Value:
        return self.op("iadd", OpClass.IALU, srcs=(a, b), dest=dest)

    def imul(self, a: Operand, b: Operand, dest: Optional[str] = None) -> Value:
        return self.op("imul", OpClass.IMUL, srcs=(a, b), dest=dest)

    # ------------------------------------------------------------------
    # Extra dependence control
    # ------------------------------------------------------------------
    def alias(self, *ops: Value) -> None:
        """Assert that these memory operations may touch common locations."""
        self._alias_groups.append({v.producer for v in ops})

    def extra_dep(self, src: Value, dst: Value, latency: int, omega: int = 0) -> None:
        """Add an explicit dependence arc between two operations."""
        self._arcs.append(
            Dependence(src=src.producer, dst=dst.producer, latency=latency, omega=omega, kind=DepKind.MEM)
        )

    def set_parity(self, base: str, parity: int) -> None:
        """Declare the double-word parity of a base symbol (0 = even bank)."""
        self._known_parity[base] = parity % 2

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------
    def _close_recurrence(self, rec: Recurrence, value: Value) -> None:
        producer = self._ops[value.producer]
        # The closing operation *is* the definition of the recurrence name:
        # rewrite its destination so carried uses read the right register.
        old_name = producer.dests[0]
        self._ops[value.producer] = Operation(
            index=producer.index,
            opcode=producer.opcode,
            opclass=producer.opclass,
            dests=(rec.name,),
            srcs=producer.srcs,
            mem=producer.mem,
            tags=producer.tags,
        )
        # Rewrite any recorded arcs and already-built users of the old name.
        renamed_arcs = []
        for arc in self._arcs:
            if arc.kind is DepKind.FLOW and arc.value == old_name and arc.src == value.producer:
                renamed_arcs.append(
                    Dependence(arc.src, arc.dst, arc.latency, arc.omega, arc.kind, rec.name)
                )
            else:
                renamed_arcs.append(arc)
        self._arcs = renamed_arcs
        for i, op in enumerate(self._ops):
            if old_name in op.srcs:
                self._ops[i] = Operation(
                    index=op.index,
                    opcode=op.opcode,
                    opclass=op.opclass,
                    dests=op.dests,
                    srcs=tuple(rec.name if s == old_name else s for s in op.srcs),
                    mem=op.mem,
                    tags=op.tags,
                )

    def build(self) -> Loop:
        """Finish the loop: resolve recurrences, analyse memory, validate."""
        for rec in self._recurrences.values():
            if rec.closing_op is None:
                raise ValueError(f"recurrence {rec.name!r} was never closed")
        arcs = list(self._arcs)
        for user, carried in self._pending_carried:
            rec = self._recurrences.get(carried.name)
            if rec is None:
                raise ValueError(f"carried use of undeclared recurrence {carried.name!r}")
            closing = self._ops[rec.closing_op]
            arcs.append(
                Dependence(
                    src=rec.closing_op,
                    dst=user,
                    latency=self.machine.latency(closing.opclass),
                    omega=carried.distance,
                    kind=DepKind.FLOW,
                    value=carried.name,
                )
            )
        # A recurrence's register is redefined every iteration, so its
        # initial value is live-in but the in-loop def takes over; keep it
        # in live_in (the prologue needs it) — nothing more to do here.
        arcs.extend(memory_dependences(self._ops, self.machine, self._alias_groups))
        ddg = DDG(len(self._ops), arcs)
        loop = Loop(
            name=self.name,
            ops=list(self._ops),
            ddg=ddg,
            live_in=set(self._live_in),
            live_out=set(self._live_out),
            trip_count=self.trip_count,
            weight=self.weight,
            known_parity=dict(self._known_parity),
        )
        loop.check_well_formed()
        return loop
