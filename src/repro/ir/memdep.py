"""Memory dependence analysis for loop bodies.

A deliberately small stand-in for the MIPSpro front end's array dependence
analysis (Section 2.1): it resolves affine references ``base + offset +
i*stride`` exactly, and treats references it cannot analyse (indirect, or
mismatched strides on the same base) according to explicit alias groups
supplied by the loop builder.  Unanalysable references with no declared
alias are assumed independent — mirroring a front end that proved
independence before handing the loop to the pipeliner.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from .ddg import Dependence, DepKind
from .operations import Operation

# Arcs with an iteration distance beyond this bound cannot constrain any
# schedule whose II is at least 1 when latencies are small; keeping the
# graph sparse keeps the schedulers fast.
MAX_OMEGA = 8


def _overlap_distance(a: Operation, b: Operation) -> Tuple[bool, int]:
    """Does reference ``b`` in some later iteration touch the address that
    reference ``a`` touches now?

    Returns ``(True, k)`` with ``k >= 0`` meaning: ``b`` in iteration
    ``n + k`` overlaps ``a`` in iteration ``n``.  Only exact restarts of the
    same address stream are reported; disjoint or incommensurate streams
    return ``(False, 0)``.
    """
    ma, mb = a.mem, b.mem
    if ma.base != mb.base:
        return False, 0
    if not (ma.is_direct and mb.is_direct):
        return False, 0
    if ma.stride != mb.stride:
        # Conservative only if the byte ranges can coincide; for the loop
        # corpora in this study, same-base references always share strides,
        # so mismatches indicate provably separated sections.
        return False, 0
    if ma.stride == 0:
        # Both reread/rewrite a fixed location every iteration.
        if _ranges_overlap(ma.offset, ma.width, mb.offset, mb.width):
            return True, 0
        return False, 0
    delta = ma.offset - mb.offset
    # b at iteration n+k reads offset mb.offset + (n+k)*stride; overlap with
    # a at n requires k*stride == delta (modulo access widths; we require
    # exact coincidence of the streams, widening by width overlap).
    for shift in range(-max(ma.width, mb.width) + 1, max(ma.width, mb.width)):
        num = delta + shift
        if num % ma.stride != 0:
            continue
        k = num // ma.stride
        if 0 <= k <= MAX_OMEGA and _ranges_overlap(
            ma.offset, ma.width, mb.offset + k * mb.stride, mb.width
        ):
            return True, k
    return False, 0


def _ranges_overlap(off1: int, w1: int, off2: int, w2: int) -> bool:
    return off1 < off2 + w2 and off2 < off1 + w1


def memory_dependences(
    ops: Sequence[Operation],
    machine,
    alias_groups: Iterable[Set[int]] = (),
) -> List[Dependence]:
    """Compute memory dependence arcs between the memory operations.

    ``alias_groups`` are sets of operation indices that the caller asserts
    may reference the same locations with unit iteration distance; all
    store-involving pairs within a group get conservative arcs.
    """
    mem_ops = [op for op in ops if op.is_memory]
    arcs: List[Dependence] = []
    seen: Set[Tuple[int, int, int]] = set()

    def emit(src: Operation, dst: Operation, omega: int) -> None:
        if omega > MAX_OMEGA:
            return
        key = (src.index, dst.index, omega)
        if key in seen:
            return
        seen.add(key)
        arcs.append(
            Dependence(
                src=src.index,
                dst=dst.index,
                latency=machine.dep_latency(DepKind.MEM, src),
                omega=omega,
                kind=DepKind.MEM,
            )
        )

    for i, a in enumerate(mem_ops):
        for b in mem_ops[i:]:
            if not (a.mem.is_store or b.mem.is_store):
                continue  # load/load pairs never conflict
            if a.index == b.index:
                continue
            first, second = (a, b) if a.index < b.index else (b, a)
            if (
                first.mem.stride == 0
                and second.mem.stride == 0
                and first.mem.base == second.mem.base
                and first.mem.is_direct
                and second.mem.is_direct
                and _ranges_overlap(
                    first.mem.offset, first.mem.width, second.mem.offset, second.mem.width
                )
            ):
                # A fixed location (e.g. a spill slot) is re-touched every
                # iteration: serialise within the iteration and across the
                # next one.
                emit(first, second, 0)
                emit(second, first, 1)
                continue
            # second touching first's address k iterations later: arc
            # first -> second with omega k.  And first touching second's
            # address in a later iteration: arc second -> first.
            hit, k = _overlap_distance(first, second)
            if hit:
                emit(first, second, k)
            hit, k = _overlap_distance(second, first)
            if hit and k > 0:
                emit(second, first, k)
            elif hit and k == 0 and first.index != second.index:
                # Same-iteration overlap already covered by program order
                # (first -> second); nothing extra to add.
                pass

    index_to_op = {op.index: op for op in ops}
    for group in alias_groups:
        members = sorted(group)
        for gi, x in enumerate(members):
            for y in members[gi + 1 :]:
                a, b = index_to_op[x], index_to_op[y]
                if not (a.is_memory and b.is_memory):
                    raise ValueError(f"alias group member {x} or {y} is not a memory op")
                if not (a.mem.is_store or b.mem.is_store):
                    continue
                emit(a, b, 0)
                emit(b, a, 1)
    return arcs
