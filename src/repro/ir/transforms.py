"""Front-end loop transformations (Section 2.1).

The MIPSpro compiler runs "a rich set of analysis and optimization before
its software pipelining phase"; three of the loop-level ones matter to the
studied kernels and are implemented here:

* :func:`unroll` — inner-loop unrolling: the alvinn dot products arrive at
  the pipeliner already unrolled over consecutive vector elements;
* :func:`interleave_reduction` — "interleaving of register recurrences
  such as summation or dot products": an accumulation carried at distance
  ``d`` becomes ``ways`` independent partial sums, i.e. a carried distance
  of ``d * ways``, dividing RecMII by ``ways`` (the compiler reduces the
  partial sums after the loop);
* :func:`promote_inter_iteration_loads` — "inter iteration common memory
  reference elimination": a load that re-reads what another load fetched
  on the previous iteration is deleted and its uses fed by the earlier
  load's value carried across the iteration (the compiler preloads the
  first value in the loop header).

All three return new :class:`~repro.ir.loop.Loop` objects; the input is
never mutated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ddg import DDG, Dependence, DepKind
from .loop import Loop
from .operations import MemRef, Operation


def _clone_name(name: str, copy: int) -> str:
    """Register name for a value in unroll copy ``copy``.

    Copy 0 keeps the original name, so live-in initial values (which the
    simulators derive from the base name) stay aligned with the original
    loop; the simulators also strip the ``~k`` suffix when looking up
    live-in values of later copies.
    """
    return name if copy == 0 else f"{name}~{copy}"


def unroll(loop: Loop, factor: int) -> Loop:
    """Unroll the loop body ``factor`` times.

    Memory references get per-copy offsets and a stride scaled by the
    factor; loop-carried arcs are re-threaded between copies; the trip
    count divides by the factor (trip counts not divisible by the factor
    would need a remainder loop in a real compiler — this transformation
    requires divisibility and raises otherwise).
    """
    if factor < 1:
        raise ValueError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return loop
    if loop.trip_count % factor != 0:
        raise ValueError(
            f"trip count {loop.trip_count} not divisible by unroll factor {factor}"
        )
    defs = loop.defs_of()

    n = loop.n_ops
    new_ops: List[Operation] = []
    for copy in range(factor):
        for op in loop.ops:
            mem = op.mem
            if mem is not None and mem.is_direct:
                mem = MemRef(
                    base=mem.base,
                    offset=mem.offset + copy * mem.stride,
                    stride=mem.stride * factor,
                    width=mem.width,
                    is_store=mem.is_store,
                )
            new_ops.append(
                Operation(
                    index=copy * n + op.index,
                    opcode=op.opcode,
                    opclass=op.opclass,
                    dests=tuple(_clone_name(d, copy) for d in op.dests),
                    # Source renaming depends on the producing copy; fixed
                    # below once arcs are threaded.
                    srcs=op.srcs,
                    mem=mem,
                    tags=op.tags,
                )
            )

    # Thread every arc between the right copies.  An original arc with
    # iteration distance omega connects, for destination copy j, the source
    # copy (j - omega) mod factor at new distance ceil((omega - j)/factor).
    arcs: List[Dependence] = []
    src_copy_for_use: Dict[Tuple[int, int, str], int] = {}
    for arc in loop.ddg.arcs:
        for j in range(factor):
            src_copy = (j - arc.omega) % factor
            new_omega = max(0, -((j - arc.omega) // factor))
            value = (
                _clone_name(arc.value, src_copy) if arc.value else arc.value
            )
            arcs.append(
                Dependence(
                    src=src_copy * n + arc.src,
                    dst=j * n + arc.dst,
                    latency=arc.latency,
                    omega=new_omega,
                    kind=arc.kind,
                    value=value,
                )
            )
            if arc.kind is DepKind.FLOW and arc.value:
                key = (j, arc.dst, arc.value)
                previous = src_copy_for_use.get(key)
                if previous is not None and previous != src_copy:
                    raise ValueError(
                        f"cannot unroll {loop.name!r}: op {arc.dst} reads "
                        f"{arc.value!r} at several iteration distances; "
                        "interleave or rename the recurrence first"
                    )
                src_copy_for_use[key] = src_copy

    # Rewrite source names now that producing copies are known.
    for copy in range(factor):
        for op in loop.ops:
            idx = copy * n + op.index
            new_srcs = []
            for src in op.srcs:
                if src in defs:
                    producer_copy = src_copy_for_use.get((copy, op.index, src), copy)
                    new_srcs.append(_clone_name(src, producer_copy))
                else:
                    new_srcs.append(src)  # invariants are shared
            existing = new_ops[idx]
            new_ops[idx] = Operation(
                index=idx,
                opcode=existing.opcode,
                opclass=existing.opclass,
                dests=existing.dests,
                srcs=tuple(new_srcs),
                mem=existing.mem,
                tags=existing.tags,
            )

    live_in = set()
    for name in loop.live_in:
        if name in defs:
            # A recurrence: the copies whose carried reads reach back past
            # iteration 0 need initial values.
            live_in.update(_clone_name(name, c) for c in range(factor))
        else:
            live_in.add(name)
    live_out = set()
    for name in loop.live_out:
        if name in defs:
            live_out.update(_clone_name(name, c) for c in range(factor))
        else:
            live_out.add(name)

    new_loop = Loop(
        name=f"{loop.name}_u{factor}",
        ops=new_ops,
        ddg=DDG(len(new_ops), arcs),
        live_in=live_in,
        live_out=live_out,
        trip_count=loop.trip_count // factor,
        weight=loop.weight,
        known_parity=dict(loop.known_parity),
    )
    new_loop.check_well_formed()
    return new_loop


def interleave_reduction(loop: Loop, value: str, ways: int = 2) -> Loop:
    """Interleave an accumulation recurrence into ``ways`` partial sums.

    The carried distance of every loop-carried flow arc of ``value``
    multiplies by ``ways``: iteration ``i`` then accumulates onto the value
    from iteration ``i - ways*d``, which is exactly ``ways`` independent
    interleaved partial sums.  RecMII contributed by the recurrence drops
    by the same factor.  (The compiler sums the partials after the loop;
    the loop-level live-out is the last partial.)
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    defs = loop.defs_of()
    if value not in defs:
        raise ValueError(f"{value!r} is not defined in loop {loop.name!r}")
    carried = [
        a
        for a in loop.ddg.arcs
        if a.kind is DepKind.FLOW and a.value == value and a.omega > 0
    ]
    if not carried:
        raise ValueError(f"{value!r} carries no recurrence to interleave")
    if ways == 1:
        return loop
    arcs = [
        Dependence(
            src=a.src,
            dst=a.dst,
            latency=a.latency,
            omega=a.omega * ways
            if (a.kind is DepKind.FLOW and a.value == value and a.omega > 0)
            else a.omega,
            kind=a.kind,
            value=a.value,
        )
        for a in loop.ddg.arcs
    ]
    new_loop = Loop(
        name=f"{loop.name}_il{ways}",
        ops=[op for op in loop.ops],
        ddg=DDG(loop.n_ops, arcs),
        live_in=set(loop.live_in),
        live_out=set(loop.live_out),
        trip_count=loop.trip_count,
        weight=loop.weight,
        known_parity=dict(loop.known_parity),
    )
    new_loop.check_well_formed()
    return new_loop


def find_promotable_loads(loop: Loop) -> List[Tuple[int, int]]:
    """Pairs ``(leader, lagger)`` where ``lagger`` re-reads, this iteration,
    the address ``leader`` read on the previous iteration."""
    pairs = []
    loads = [op for op in loop.memory_ops() if not op.mem.is_store and op.mem.is_direct]
    for leader in loads:
        for lagger in loads:
            if leader.index == lagger.index:
                continue
            if (
                leader.mem.base == lagger.mem.base
                and leader.mem.stride == lagger.mem.stride
                and leader.mem.width == lagger.mem.width
                and lagger.mem.offset == leader.mem.offset - leader.mem.stride
            ):
                pairs.append((leader.index, lagger.index))
    return pairs


def promote_inter_iteration_loads(loop: Loop) -> Loop:
    """Eliminate loads whose value was loaded by another op last iteration.

    Each lagging load is deleted; its uses read the leader's destination
    with the iteration distance increased by one.  A real compiler
    preloads the first element in the loop header; here the value for
    iteration 0 comes from the (carried) live-in initial value, so the
    transformation preserves semantics from iteration 1 onward — the
    steady state the pipeliners care about.
    """
    pairs = find_promotable_loads(loop)
    if not pairs:
        return loop
    replaced: Dict[int, int] = {}  # lagger -> leader
    for leader, lagger in pairs:
        if lagger not in replaced and leader not in replaced:
            replaced[lagger] = leader

    keep = [op for op in loop.ops if op.index not in replaced]
    index_map = {op.index: i for i, op in enumerate(keep)}
    defs = loop.defs_of()
    value_map = {  # lagging value -> (leader value, +1 iteration)
        loop.ops[lagger].dest: loop.ops[leader].dest
        for lagger, leader in replaced.items()
    }

    new_ops: List[Operation] = []
    for op in keep:
        new_ops.append(
            Operation(
                index=index_map[op.index],
                opcode=op.opcode,
                opclass=op.opclass,
                dests=op.dests,
                srcs=tuple(value_map.get(s, s) for s in op.srcs),
                mem=op.mem,
                tags=op.tags,
            )
        )

    arcs: List[Dependence] = []
    for arc in loop.ddg.arcs:
        src, dst = arc.src, arc.dst
        omega, value = arc.omega, arc.value
        if dst in replaced:
            continue  # nothing depends on feeding a deleted load
        if src in replaced:
            if arc.kind is DepKind.FLOW and value:
                # The use now reads the leader's value one iteration later.
                src = replaced[src]
                value = loop.ops[src].dest
                omega += 1
            else:
                continue  # memory-order arcs of the deleted load vanish
        arcs.append(
            Dependence(
                src=index_map[src],
                dst=index_map[dst],
                latency=arc.latency,
                omega=omega,
                kind=arc.kind,
                value=value,
            )
        )

    live_in = set(loop.live_in)
    # The leaders' values are read from the previous iteration: iteration 0
    # needs an initial value (the compiler's preload).
    for leader in set(replaced.values()):  # det: ok — only inserts into a set
        live_in.add(loop.ops[leader].dest)

    new_loop = Loop(
        name=f"{loop.name}_promoted",
        ops=new_ops,
        ddg=DDG(len(new_ops), arcs),
        live_in=live_in,
        live_out=set(loop.live_out),
        trip_count=loop.trip_count,
        weight=loop.weight,
        known_parity=dict(loop.known_parity),
    )
    new_loop.check_well_formed()
    return new_loop
