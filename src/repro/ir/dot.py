"""Graphviz export of data dependence graphs.

``to_dot`` renders a loop's DDG in the style dependence graphs are drawn
in the literature: solid edges for register flow (labelled with latency),
dashed for memory ordering, with loop-carried arcs annotated by their
iteration distance.  Paste the output into any Graphviz viewer.
"""

from __future__ import annotations

from typing import Optional

from .ddg import DepKind
from .loop import Loop


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(loop: Loop, schedule=None, name: Optional[str] = None) -> str:
    """Render the loop's dependence graph as Graphviz source.

    With a ``schedule``, nodes are annotated with their issue cycle and
    grouped by pipestage (one rank per stage).
    """
    graph_name = name or loop.name
    lines = [f'digraph "{_escape(graph_name)}" {{']
    lines.append("  rankdir=TB;")
    lines.append('  node [shape=box, fontname="monospace"];')
    for op in loop.ops:
        label = f"{op.index}: {op.opcode}"
        if op.dests:
            label += f" {op.dest}"
        if op.mem is not None:
            off = "?" if op.mem.offset is None else str(op.mem.offset)
            label += f"\\n{op.mem.base}+{off}"
        if schedule is not None:
            label += f"\\nt={schedule.time(op.index)}"
        shape = ' style=filled fillcolor="#e8e8ff"' if op.is_memory else ""
        lines.append(f'  n{op.index} [label="{_escape(label)}"{shape}];')
    for arc in loop.ddg.arcs:
        attrs = []
        label = str(arc.latency)
        if arc.omega:
            label += f" / w{arc.omega}"
            attrs.append("constraint=false")
        attrs.append(f'label="{_escape(label)}"')
        if arc.kind is DepKind.MEM:
            attrs.append("style=dashed")
        elif arc.kind is not DepKind.FLOW:
            attrs.append("style=dotted")
        lines.append(f"  n{arc.src} -> n{arc.dst} [{', '.join(attrs)}];")
    if schedule is not None:
        stages = {}
        for op in loop.ops:
            stages.setdefault(schedule.stage(op.index), []).append(op.index)
        for stage, members in sorted(stages.items()):
            nodes = "; ".join(f"n{i}" for i in sorted(members))
            lines.append(f"  {{ rank=same; {nodes}; }}  // stage {stage}")
    lines.append("}")
    return "\n".join(lines)
