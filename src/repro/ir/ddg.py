"""Data dependence graphs for modulo scheduling.

A dependence arc ``(src, dst, latency, omega)`` constrains any legal modulo
schedule: if ``t(i)`` is the issue cycle of operation ``i`` (in iteration 0)
and ``II`` the initiation interval, then

    t(dst) - t(src) >= latency - II * omega.

``omega`` is the *iteration distance*: 0 for intra-iteration dependences and
``k > 0`` when ``dst`` in iteration ``n + k`` depends on ``src`` in
iteration ``n`` (loop-carried).

The graph also knows its strongly connected components, which drive both
the legal-range computation of the branch-and-bound scheduler (Section 2.4
of the paper) and the pipestage-adjustment postpass (Section 2.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


class DepKind(enum.Enum):
    FLOW = "flow"  # true (read-after-write) register dependence
    ANTI = "anti"  # write-after-read
    OUTPUT = "output"  # write-after-write
    MEM = "mem"  # memory dependence (any of the above, through memory)


@dataclass(frozen=True)
class Dependence:
    """One arc of the data dependence graph."""

    src: int
    dst: int
    latency: int
    omega: int = 0
    kind: DepKind = DepKind.FLOW
    value: str = ""  # virtual register carried, for FLOW arcs

    def __post_init__(self) -> None:
        if self.omega < 0:
            raise ValueError(f"dependence {self.src}->{self.dst}: negative omega {self.omega}")

    def min_distance(self, ii: int) -> int:
        """Minimum ``t(dst) - t(src)`` this arc imposes at initiation interval ``ii``."""
        return self.latency - ii * self.omega


class DDG:
    """Data dependence graph over operations ``0 .. n_ops - 1``.

    The graph is immutable after construction; strongly connected components
    and adjacency are computed once.
    """

    def __init__(self, n_ops: int, arcs: Iterable[Dependence]):
        self.n_ops = n_ops
        self.arcs: Tuple[Dependence, ...] = tuple(arcs)
        for arc in self.arcs:
            if not (0 <= arc.src < n_ops and 0 <= arc.dst < n_ops):
                raise ValueError(f"dependence {arc.src}->{arc.dst} out of range for {n_ops} ops")
            if arc.src == arc.dst and arc.omega == 0 and arc.latency > 0:
                raise ValueError(f"op {arc.src}: unsatisfiable self-dependence with omega 0")
        self._succ: List[List[Dependence]] = [[] for _ in range(n_ops)]
        self._pred: List[List[Dependence]] = [[] for _ in range(n_ops)]
        for arc in self.arcs:
            self._succ[arc.src].append(arc)
            self._pred[arc.dst].append(arc)
        self._sccs = _tarjan_sccs(n_ops, self._succ)
        self._scc_of: List[int] = [0] * n_ops
        for scc_id, members in enumerate(self._sccs):
            for node in members:
                self._scc_of[node] = scc_id

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def succs(self, op: int) -> Sequence[Dependence]:
        """Arcs leaving ``op``."""
        return self._succ[op]

    def preds(self, op: int) -> Sequence[Dependence]:
        """Arcs entering ``op``."""
        return self._pred[op]

    def roots(self) -> List[int]:
        """Operations with no intra-graph successors outside self-loops.

        These are typically the stores: the starting points of the folded
        depth-first priority ordering.
        """
        return [op for op in range(self.n_ops) if all(a.dst == op for a in self._succ[op])]

    def leaves(self) -> List[int]:
        """Operations with no predecessors outside self-loops (typically loads)."""
        return [op for op in range(self.n_ops) if all(a.src == op for a in self._pred[op])]

    # ------------------------------------------------------------------
    # Strongly connected components
    # ------------------------------------------------------------------
    @property
    def sccs(self) -> Sequence[Tuple[int, ...]]:
        """Strongly connected components in reverse topological order.

        Component ``i`` never depends (transitively) on component ``j`` for
        ``j > i`` — Tarjan's algorithm emits components in reverse
        topological order of the condensation.
        """
        return self._sccs

    def scc_id(self, op: int) -> int:
        return self._scc_of[op]

    def scc_members(self, op: int) -> Tuple[int, ...]:
        return self._sccs[self._scc_of[op]]

    def in_nontrivial_scc(self, op: int) -> bool:
        """True if ``op`` belongs to a dependence cycle.

        A component is nontrivial if it has more than one member or if its
        single member has a self-arc (a one-operation recurrence).
        """
        members = self.scc_members(op)
        if len(members) > 1:
            return True
        return any(a.dst == op for a in self._succ[op])

    def nontrivial_sccs(self) -> List[Tuple[int, ...]]:
        return [scc for scc in self._sccs if len(scc) > 1 or self.in_nontrivial_scc(scc[0])]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def condensation_order(self) -> List[Tuple[int, ...]]:
        """Components in topological order (predecessors before successors)."""
        return list(reversed(self._sccs))

    def height_map(self, latency_of_arc=None) -> Dict[int, int]:
        """Maximum latency-weighted path length from each op to any root.

        This is the "data precedence graph heights" priority of Section 2.7.
        Cycles are handled by treating each SCC as a unit: the height of an
        SCC member is the max over arcs leaving the SCC plus the member's
        intra-SCC longest acyclic contribution; for simplicity and to match
        a scheduler's needs we compute heights on the condensation with each
        member's own outgoing arcs.
        """
        heights = [0] * self.n_ops
        # Process components topologically from roots (reverse topological
        # order of condensation = self._sccs order is reverse topological,
        # i.e. successors first), so successors' heights are already final.
        for scc in self._sccs:
            # Iterate a few times within the SCC to propagate intra-SCC
            # acyclic contributions (bounded: |scc| passes reach a fixpoint
            # for the acyclic part; carried arcs are ignored for height).
            for _ in range(max(1, len(scc))):
                changed = False
                for op in scc:
                    best = 0
                    for arc in self._succ[op]:
                        if arc.omega > 0 and self._scc_of[arc.dst] == self._scc_of[op]:
                            continue  # ignore carried arcs inside the cycle
                        if arc.dst == op:
                            continue
                        cand = heights[arc.dst] + arc.latency
                        if cand > best:
                            best = cand
                    if best > heights[op]:
                        heights[op] = best
                        changed = True
                if not changed:
                    break
        return {op: heights[op] for op in range(self.n_ops)}


def _tarjan_sccs(n: int, succ: Sequence[Sequence[Dependence]]) -> List[Tuple[int, ...]]:
    """Iterative Tarjan strongly-connected-components.

    Returns components in reverse topological order.  Iterative to survive
    the 100+ operation loop bodies the paper schedules without hitting
    Python's recursion limit.
    """
    index_counter = 0
    indices: List[int] = [-1] * n
    lowlink: List[int] = [0] * n
    on_stack: List[bool] = [False] * n
    stack: List[int] = []
    result: List[Tuple[int, ...]] = []

    for start in range(n):
        if indices[start] != -1:
            continue
        work: List[Tuple[int, int]] = [(start, 0)]
        while work:
            node, edge_i = work[-1]
            if edge_i == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            recursed = False
            arcs = succ[node]
            while edge_i < len(arcs):
                child = arcs[edge_i].dst
                edge_i += 1
                if indices[child] == -1:
                    work[-1] = (node, edge_i)
                    work.append((child, 0))
                    recursed = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], indices[child])
            if recursed:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == node:
                        break
                result.append(tuple(sorted(component)))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result
