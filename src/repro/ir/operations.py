"""Operations of the loop-body intermediate representation.

The showdown starts where the MIPSpro compiler's software pipeliner starts:
an innermost loop body that has already been if-converted, unrolled and
strength-reduced, represented as a list of operations plus a data dependence
graph.  Each operation reads and writes *virtual registers* (plain string
names); loads and stores additionally carry a symbolic memory reference used
by memory-dependence construction and by the memory-bank pairing heuristic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpClass(enum.Enum):
    """Functional classes of operations, used to look up machine resources.

    The classes mirror the instruction mix relevant to the R8000's
    floating-point pipelines: FP add/multiply/madd are fully pipelined,
    divide and square root are unpipelined, memory operations go to the
    dual-ported (banked) second-level cache, and integer ALU operations
    cover address arithmetic and conditional moves left by if-conversion.
    """

    FADD = "fadd"
    FMUL = "fmul"
    FMADD = "fmadd"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FCMP = "fcmp"
    FMOV = "fmov"  # conditional moves produced by if-conversion
    LOAD = "load"
    STORE = "store"
    IALU = "ialu"
    IMUL = "imul"
    BRANCH = "branch"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_float(self) -> bool:
        return self in (
            OpClass.FADD,
            OpClass.FMUL,
            OpClass.FMADD,
            OpClass.FDIV,
            OpClass.FSQRT,
            OpClass.FCMP,
            OpClass.FMOV,
        )


# Register classes for allocation: the R8000 has separate integer and
# floating-point register files.
class RegClass(enum.Enum):
    FP = "fp"
    INT = "int"


def result_reg_class(opclass: OpClass) -> RegClass:
    """Register class of the value produced by an operation class.

    Loads are classified FP because the pipelined inner loops the paper
    studies are floating-point loops; integer loads can be expressed with
    IALU-class operations feeding address arithmetic.
    """
    if opclass in (OpClass.IALU, OpClass.IMUL):
        return RegClass.INT
    return RegClass.FP


@dataclass(frozen=True)
class MemRef:
    """A symbolic memory reference ``base + offset + iteration * stride``.

    Offsets and strides are in bytes.  ``offset`` is ``None`` for references
    whose address is not a compile-time-analysable affine function of the
    loop counter (e.g. the indirections in mdljdp2).  ``width`` is the access
    width in bytes (4 for single precision, 8 for double precision).

    The R8000 banks its streaming cache on double-word (8-byte) boundaries;
    :func:`relative_bank` below encodes exactly when the *relative* bank of
    two references is a compile-time constant.
    """

    base: str
    offset: Optional[int] = 0
    stride: int = 8
    width: int = 8
    is_store: bool = False

    def address(self, base_addr: int, iteration: int) -> int:
        """Concrete byte address given a concrete base address.

        Only valid for direct references (``offset is not None``).
        """
        if self.offset is None:
            raise ValueError(f"indirect reference through {self.base!r} has no static address")
        return base_addr + self.offset + iteration * self.stride

    @property
    def is_direct(self) -> bool:
        return self.offset is not None


def relative_bank(
    m1: MemRef, m2: MemRef, parities: Optional[dict] = None
) -> Optional[int]:
    """Compile-time relative bank of two references issued in the same cycle.

    Returns 0 if the two references provably hit the *same* bank every
    iteration, 1 if they provably hit *opposite* banks every iteration, and
    ``None`` when the relative bank is unknown at compile time.

    Two same-base references with equal strides and a byte distance that is
    a multiple of 8 have a constant double-word distance ``d // 8``
    independent of the (unknown) base alignment, hence a known relative
    bank.  A distance that is not a multiple of 8 (e.g. consecutive
    single-precision elements, 4 bytes apart) straddles double words
    depending on alignment, so the relative bank is unknown — this is
    precisely the alvinn situation described in Section 4.3 of the paper.

    ``parities`` maps base symbols to a known double-word parity (0/1),
    e.g. for arrays the compiler itself laid out (spill slots, aligned
    commons); with both parities known, a cross-base pair's relative bank
    is also a compile-time constant when strides match and the offsets are
    congruent modulo 8.
    """
    if not (m1.is_direct and m2.is_direct):
        return None
    if m1.stride != m2.stride:
        return None
    if m1.base == m2.base:
        d = m1.offset - m2.offset
        if d % 8 != 0:
            return None
        return (d // 8) % 2
    if parities is None:
        return None
    p1, p2 = parities.get(m1.base), parities.get(m2.base)
    if p1 is None or p2 is None:
        return None
    if (m1.offset - m2.offset) % 8 != 0:
        return None
    return (p1 + m1.offset // 8 - p2 - m2.offset // 8) % 2


@dataclass
class Operation:
    """One operation of a loop body.

    ``index`` is the position in the loop body's operation list and is the
    node id used by the data dependence graph.  ``dests`` and ``srcs`` name
    virtual registers.  ``mem`` is set for LOAD/STORE operations.
    """

    index: int
    opcode: str
    opclass: OpClass
    dests: Tuple[str, ...] = ()
    srcs: Tuple[str, ...] = ()
    mem: Optional[MemRef] = None
    # Free-form annotations (used e.g. by spill insertion to mark spill code).
    tags: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.opclass.is_memory and self.mem is None:
            raise ValueError(f"{self.opcode} at {self.index}: memory operation requires a MemRef")
        if self.opclass is OpClass.STORE and self.mem is not None and not self.mem.is_store:
            raise ValueError(f"store at {self.index} carries a load MemRef")
        if self.opclass is OpClass.LOAD and self.mem is not None and self.mem.is_store:
            raise ValueError(f"load at {self.index} carries a store MemRef")

    @property
    def is_memory(self) -> bool:
        return self.opclass.is_memory

    @property
    def dest(self) -> str:
        if len(self.dests) != 1:
            raise ValueError(f"operation {self.index} has {len(self.dests)} dests")
        return self.dests[0]

    def with_index(self, index: int) -> "Operation":
        """A copy of this operation at a different position."""
        return Operation(
            index=index,
            opcode=self.opcode,
            opclass=self.opclass,
            dests=self.dests,
            srcs=self.srcs,
            mem=self.mem,
            tags=self.tags,
        )

    def __str__(self) -> str:
        parts = [f"[{self.index}] {self.opcode}"]
        if self.dests:
            parts.append(", ".join(self.dests))
            parts.append("<-")
        parts.append(", ".join(self.srcs))
        if self.mem is not None:
            off = "?" if self.mem.offset is None else str(self.mem.offset)
            parts.append(f"@{self.mem.base}+{off}+i*{self.mem.stride}")
        return " ".join(p for p in parts if p)
