"""Loop container: operations + dependence graph + metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .ddg import DDG, DepKind
from .operations import OpClass, Operation


@dataclass
class Loop:
    """An innermost loop ready for software pipelining.

    ``ops`` are the loop-body operations; ``ddg`` the dependence graph over
    them.  ``live_in`` names virtual registers defined before the loop
    (loop invariants and initial values of recurrences); ``live_out`` names
    registers whose final value is used after the loop.  ``trip_count`` is
    the *nominal* trip count used by performance experiments; individual
    experiments may override it.
    """

    name: str
    ops: List[Operation]
    ddg: DDG
    live_in: Set[str] = field(default_factory=set)
    live_out: Set[str] = field(default_factory=set)
    trip_count: int = 100
    # Weight of this loop when aggregating per-benchmark numbers; mirrors
    # the fraction of benchmark runtime spent in the loop.
    weight: float = 1.0
    # Base symbols with compile-time-known double-word parity (0 = even).
    known_parity: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.ops) != self.ddg.n_ops:
            raise ValueError(
                f"loop {self.name!r}: {len(self.ops)} ops but DDG over {self.ddg.n_ops}"
            )
        for i, op in enumerate(self.ops):
            if op.index != i:
                raise ValueError(f"loop {self.name!r}: op at position {i} has index {op.index}")

    # ------------------------------------------------------------------
    @property
    def n_ops(self) -> int:
        return len(self.ops)

    def memory_ops(self) -> List[Operation]:
        return [op for op in self.ops if op.is_memory]

    def defs_of(self) -> Dict[str, int]:
        """Map virtual register -> defining operation index.

        Loop bodies are in single-assignment form: each register has at
        most one definition inside the loop.
        """
        defs: Dict[str, int] = {}
        for op in self.ops:
            for d in op.dests:
                if d in defs:
                    raise ValueError(f"loop {self.name!r}: {d} defined twice")
                defs[d] = op.index
        return defs

    def uses_of(self) -> Dict[str, List[int]]:
        """Map virtual register -> list of using operation indices."""
        uses: Dict[str, List[int]] = {}
        for op in self.ops:
            for s in op.srcs:
                uses.setdefault(s, []).append(op.index)
        return uses

    def check_well_formed(self) -> None:
        """Raise ValueError if the loop violates IR invariants.

        Checks single assignment, that every use is covered either by a
        flow arc or by ``live_in``, and that flow arcs name real def/use
        pairs.
        """
        defs = self.defs_of()
        flow_covered: Set[Tuple[int, str]] = set()
        for arc in self.ddg.arcs:
            if arc.kind is not DepKind.FLOW:
                continue
            if arc.value:
                src_op = self.ops[arc.src]
                dst_op = self.ops[arc.dst]
                if arc.value not in src_op.dests:
                    raise ValueError(
                        f"loop {self.name!r}: flow arc {arc.src}->{arc.dst} names "
                        f"{arc.value!r} which op {arc.src} does not define"
                    )
                if arc.value not in dst_op.srcs:
                    raise ValueError(
                        f"loop {self.name!r}: flow arc {arc.src}->{arc.dst} names "
                        f"{arc.value!r} which op {arc.dst} does not read"
                    )
                flow_covered.add((arc.dst, arc.value))
        for op in self.ops:
            for s in op.srcs:
                if s in self.live_in:
                    continue
                if (op.index, s) in flow_covered:
                    continue
                if s in defs:
                    raise ValueError(
                        f"loop {self.name!r}: use of {s!r} by op {op.index} has no flow arc"
                    )
                raise ValueError(
                    f"loop {self.name!r}: op {op.index} reads undefined register {s!r}"
                )

    def op_mix(self) -> Dict[OpClass, int]:
        """Histogram of operation classes, for reporting."""
        mix: Dict[OpClass, int] = {}
        for op in self.ops:
            mix[op.opclass] = mix.get(op.opclass, 0) + 1
        return mix

    def __str__(self) -> str:
        lines = [f"loop {self.name} (trip={self.trip_count}, {self.n_ops} ops)"]
        lines.extend(f"  {op}" for op in self.ops)
        lines.append(f"  arcs: {len(self.ddg.arcs)}")
        return "\n".join(lines)
