"""Loop intermediate representation: operations, dependence graphs, builder."""

from .builder import CarriedUse, LoopBuilder, Recurrence, Value
from .ddg import DDG, Dependence, DepKind
from .dot import to_dot
from .loop import Loop
from .memdep import memory_dependences
from .operations import MemRef, OpClass, Operation, RegClass, relative_bank, result_reg_class
from .transforms import (
    find_promotable_loads,
    interleave_reduction,
    promote_inter_iteration_loads,
    unroll,
)

__all__ = [
    "CarriedUse",
    "DDG",
    "Dependence",
    "DepKind",
    "Loop",
    "LoopBuilder",
    "MemRef",
    "OpClass",
    "Operation",
    "Recurrence",
    "RegClass",
    "Value",
    "find_promotable_loads",
    "interleave_reduction",
    "memory_dependences",
    "promote_inter_iteration_loads",
    "relative_bank",
    "result_reg_class",
    "to_dot",
    "unroll",
]
