# Developer entry points.  Everything runs on the stock toolchain;
# `lint` upgrades gracefully when ruff/mypy are installed.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-verify lint verify-corpus bench bench-quick bench-baseline \
        bench-tests bench-micro trace-smoke explain analyze diff-strict report \
        report-smoke fuzz fuzz-smoke portfolio-smoke serve serve-smoke \
        serve-baseline trend history-seed ci

test:
	$(PYTHON) -m pytest -x -q

# Just the repro.verify subsystem tests (marker registered in pyproject.toml).
test-verify:
	$(PYTHON) -m pytest -q -m verify

# Static lint: ruff + mypy when available, otherwise a compile-only check so
# the target is still meaningful on machines without the dev extras.  The
# determinism lint (repro.analyze.codelint) needs only the stdlib and
# always runs: unordered iteration or ambient randomness anywhere near
# the schedulers would make certificates irreproducible.
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		echo "ruff check src tests"; ruff check src tests; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src tests; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		echo "mypy src/repro/verify src/repro/analyze"; \
		mypy src/repro/verify src/repro/analyze; \
	else \
		echo "mypy not installed; skipped"; \
	fi
	$(PYTHON) -m repro.analyze.codelint src/repro

# Sweep both workload corpora through all three pipeliners and verify every
# schedule, allocation and emitted listing (exits non-zero on any ERROR).
verify-corpus:
	$(PYTHON) -m repro verify livermore
	$(PYTHON) -m repro verify spec92

# The full timed (loop × scheduler) grid, emitted as
# benchmarks/output/BENCH_pipeline.json (cached under .exec-cache/).
bench:
	$(PYTHON) -m repro bench --jobs 4

# The CI smoke lane: Livermore only, tighter solver budget, then a
# warn-only comparison against the committed baseline.
bench-quick:
	$(PYTHON) -m repro bench --quick --jobs 4
	$(PYTHON) benchmarks/check_regression.py

# Refresh the committed baseline from a clean (uncached) quick run.  Run
# after intentional scheduler changes; commit the result and mention the
# cause in the commit message (see EXPERIMENTS.md).
bench-baseline:
	$(PYTHON) -m repro bench --quick --jobs 4 --no-cache
	cp benchmarks/output/BENCH_pipeline.json benchmarks/baseline/BENCH_pipeline.json
	@echo "baseline refreshed; review 'git diff benchmarks/baseline' before committing"

# The original pytest-based benchmark suite (paper-shape assertions).
bench-tests:
	$(PYTHON) -m pytest benchmarks -q

# The perf CI lane: pinned-seed hot-path microbenchmarks (MRT probing,
# distance tables, one B&B search) gated against the committed
# benchmarks/baseline/BENCH_micro.json (warn >1.5x, fail >3x).  Refresh
# the baseline after intentional perf changes with
# `python benchmarks/test_micro_hotpaths.py --update-baseline`.
bench-micro:
	$(PYTHON) -m pytest benchmarks/test_micro_hotpaths.py -q

# Search-effort tracing smoke: three Livermore loops through all three
# pipeliners with the repro.obs recorder on; --check asserts the JSONL
# spools and the merged Chrome trace parse and nest correctly.
trace-smoke:
	$(PYTHON) -m repro trace livermore --limit 3 --check --trace-dir benchmarks/output/trace

# II-gap attribution over the full Livermore corpus: which constraint
# (recurrence, resource, register pressure, bank pairing, search budget)
# binds each loop's achieved II, per scheduler.
explain:
	$(PYTHON) -m repro explain livermore

# Certified II lower bounds over every corpus: derive the refined bounds,
# validate every shipped certificate with the independent checker, and
# cross-check each scheduler's achieved II against the certified floor
# (exits non-zero on a checker failure or a bound contradiction).
analyze:
	$(PYTHON) -m repro analyze livermore --check
	$(PYTHON) -m repro analyze spec92 --check
	$(PYTHON) -m repro analyze recbound --check

# The CI regression gate: attributed diff of the latest bench output
# against the committed baseline; exits non-zero on quality regressions.
diff-strict:
	$(PYTHON) -m repro diff benchmarks/baseline benchmarks/output --strict

# The full dashboard: figure tables, per-loop II explanations, bench diff.
report:
	$(PYTHON) -m repro report --html --check

# CI's dashboard smoke: three loops, no experiment tables, validated HTML.
report-smoke:
	$(PYTHON) -m repro report --html --corpus livermore --limit 3 \
		--experiments none --output benchmarks/output/report.html --check

# Statistical trend verdicts over the run-history store: every metric
# series of the last 20 stored runs classified as stable / noisy / drift
# / step_change, changepoints attributed to commit ranges.  Warn-only
# here (history depth varies between checkouts); `repro diff --trend`
# is the gate that escalates a fresh step_change to a regression.
trend:
	$(PYTHON) -m repro trend pipeline
	$(PYTHON) -m repro trend service
	$(PYTHON) -m repro trend micro

# (Re)seed the run-history store from the committed baselines so trend
# verdicts have a run zero on a fresh checkout.  Appends — never
# overwrites — so it is safe on a populated store.
history-seed:
	$(PYTHON) -c "import pathlib; \
		from repro.obs.history import seed_from_baselines; \
		records = seed_from_baselines(pathlib.Path('benchmarks/baseline'), \
			pathlib.Path('benchmarks/history')); \
		print('\n'.join(str(r) for r in records) or 'nothing to seed')"

# Coverage-guided differential fuzzing of the three pipeliners.  Any
# oracle violation is minimized into tests/fuzz_corpus/ and replayed by
# tests/test_fuzz_corpus.py forever after.
fuzz:
	$(PYTHON) -m repro fuzz --seconds 300 --jobs 4

# The CI fuzzing lane: 60 seconds, deterministic seed, new reproducers
# land in benchmarks/output/fuzz-findings for artifact upload.
fuzz-smoke:
	$(PYTHON) -m repro fuzz --seconds 60 --jobs 2 --seed 0 \
		--findings-dir benchmarks/output/fuzz-findings

# The backend-portfolio smoke lane: run the quick grid (portfolio rides
# in the default scheduler set with cross-check on), gate it against the
# committed baseline, and require a contradiction-free probe trail —
# zero cross-backend disagreements and a witness behind every sat.
portfolio-smoke:
	$(PYTHON) -m repro bench --quick --jobs 4 --schedulers portfolio
	$(PYTHON) -c "import json, sys; \
		bench = json.load(open('benchmarks/output/BENCH_pipeline.json')); \
		totals = bench['totals']; \
		probes = totals.get('probes', 0); \
		bad = totals.get('disagreements', 0); \
		print(f'portfolio probes={probes} disagreements={bad}'); \
		sys.exit(1 if bad or not probes else 0)"
	$(PYTHON) -m repro bench --quick --jobs 4
	$(PYTHON) -m repro diff benchmarks/baseline benchmarks/output --strict

# The scheduling daemon on the default TCP port (ctrl-C drains gracefully).
serve:
	$(PYTHON) -m repro serve --port 7996 --jobs 4

# The serving smoke lane: boot an in-process daemon, replay the quick
# grid + committed fuzz corpus through the NDJSON wire protocol (a warm
# phase that solves every distinct cell, then a cache-served replay at
# concurrency 16), require a clean pass — zero protocol/cell/verify
# errors, >=50% cache hits — plus answers bit-identical to the direct
# exec engine, then gate BENCH_service.json against the committed
# baseline (quality fields strict, latency warn-only).
serve-smoke:
	$(PYTHON) -m repro serve --selftest --jobs 2 --check-equivalence
	$(PYTHON) -m repro diff benchmarks/baseline benchmarks/output --name service --strict

# Refresh the committed service baseline from a clean selftest run.
serve-baseline:
	$(PYTHON) -m repro serve --selftest --jobs 2
	cp benchmarks/output/BENCH_service.json benchmarks/baseline/BENCH_service.json
	@echo "service baseline refreshed; review 'git diff benchmarks/baseline' before committing"

# Everything CI runs, in CI's order.
ci: lint test verify-corpus analyze bench-quick trace-smoke report-smoke \
	diff-strict portfolio-smoke bench-micro fuzz-smoke serve-smoke trend
